(* Machine substrate tests: paged memory, the three safe-pointer-store
   organisations (with QCheck equivalence properties), the heap allocator
   with temporal ids, and the address-space layout. *)

module M = Levee_machine
module SS = M.Safestore

let t name f = Alcotest.test_case name `Quick f

(* ---------- paged memory ---------- *)

let test_mem_rw () =
  let m = M.Mem.create () in
  Alcotest.(check int) "unmapped reads zero" 0 (M.Mem.read m 0x12345);
  M.Mem.write m 0x12345 99;
  Alcotest.(check int) "read back" 99 (M.Mem.read m 0x12345);
  M.Mem.write m 0x12346 1;
  Alcotest.(check int) "neighbour" 1 (M.Mem.read m 0x12346);
  Alcotest.(check int) "far away still zero" 0 (M.Mem.read m 0x9999999)

let test_mem_footprint () =
  let m = M.Mem.create () in
  Alcotest.(check int) "empty" 0 (M.Mem.footprint_words m);
  M.Mem.write m 0 1;
  M.Mem.write m 1 1;
  let one_page = M.Mem.footprint_words m in
  Alcotest.(check bool) "one page" true (one_page > 0);
  M.Mem.write m 10_000_000 1;
  Alcotest.(check int) "two pages" (2 * one_page) (M.Mem.footprint_words m)

(* ---------- safe pointer store ---------- *)

let entry v = { SS.value = v; lower = v; upper = v + 4; tid = 7; kind = SS.Data }

let test_store_basic impl () =
  let s = SS.create impl in
  Alcotest.(check bool) "miss" true (SS.get s 42 = None);
  SS.set s 42 (entry 1000);
  (match SS.get s 42 with
   | Some e ->
     Alcotest.(check int) "value" 1000 e.SS.value;
     Alcotest.(check int) "tid" 7 e.SS.tid
   | None -> Alcotest.fail "entry lost");
  SS.clear_at s 42;
  Alcotest.(check bool) "cleared" true (SS.get s 42 = None);
  Alcotest.(check int) "count" 0 (SS.entry_count s)

let test_store_footprints () =
  (* the array organisation must cost much more memory per sparse entry
     than the hashtable — the paper's 105% vs 13.9% memory overheads *)
  let addresses = List.init 64 (fun i -> 0x100000 + (i * 5000)) in
  let fill impl =
    let s = SS.create impl in
    List.iter (fun a -> SS.set s a (entry a)) addresses;
    SS.footprint_words s
  in
  let arr = fill SS.Simple_array in
  let two = fill SS.Two_level in
  let hsh = fill SS.Hashtable in
  Alcotest.(check bool) "array > two-level" true (arr > two);
  Alcotest.(check bool) "two-level > hashtable" true (two > hsh);
  Alcotest.(check bool) "array lookup cheapest" true
    (SS.lookup_cost SS.Simple_array < SS.lookup_cost SS.Hashtable)

(* QCheck: all three organisations implement the same map semantics. *)
let store_ops_equivalent =
  let op_gen =
    QCheck.Gen.(
      frequency
        [ (4, map2 (fun a v -> `Set (a, v)) (int_range 1 2000) (int_range 0 1000));
          (2, map (fun a -> `Get a) (int_range 1 2000));
          (1, map (fun a -> `Clear a) (int_range 1 2000)) ])
  in
  let ops_arb = QCheck.make QCheck.Gen.(list_size (int_range 1 200) op_gen) in
  QCheck.Test.make ~name:"safestore organisations agree" ~count:200 ops_arb
    (fun ops ->
      let a = SS.create SS.Simple_array in
      let b = SS.create SS.Two_level in
      let c = SS.create SS.Hashtable in
      List.for_all
        (fun op ->
          match op with
          | `Set (addr, v) ->
            SS.set a addr (entry v);
            SS.set b addr (entry v);
            SS.set c addr (entry v);
            true
          | `Clear addr ->
            SS.clear_at a addr;
            SS.clear_at b addr;
            SS.clear_at c addr;
            true
          | `Get addr ->
            let ra = SS.get a addr and rb = SS.get b addr and rc = SS.get c addr in
            ra = rb && rb = rc)
        ops)

(* ---------- heap ---------- *)

let test_heap_alloc_free () =
  let mem = M.Mem.create () in
  let h = M.Heap.create mem ~base:1000 ~limit:100_000 in
  let b1 = M.Heap.malloc h 10 in
  let b2 = M.Heap.malloc h 10 in
  Alcotest.(check bool) "disjoint" true
    (b2.M.Heap.addr >= b1.M.Heap.addr + 10);
  M.Heap.free h b1.M.Heap.addr;
  let b3 = M.Heap.malloc h 10 in
  Alcotest.(check int) "reuse freed block" b1.M.Heap.addr b3.M.Heap.addr;
  Alcotest.(check bool) "fresh temporal id" true (b3.M.Heap.tid <> b1.M.Heap.tid);
  Alcotest.(check bool) "old tid dead" true (M.Heap.tid_dead h b1.M.Heap.tid);
  Alcotest.(check bool) "new tid live" false (M.Heap.tid_dead h b3.M.Heap.tid)

let test_heap_errors () =
  let mem = M.Mem.create () in
  let h = M.Heap.create mem ~base:1000 ~limit:100_000 in
  let b = M.Heap.malloc h 4 in
  M.Heap.free h b.M.Heap.addr;
  (try
     M.Heap.free h b.M.Heap.addr;
     Alcotest.fail "double free accepted"
   with M.Trap.Machine_stop (M.Trap.Trapped M.Trap.Double_free) -> ());
  (try
     M.Heap.free h 55;
     Alcotest.fail "invalid free accepted"
   with M.Trap.Machine_stop (M.Trap.Trapped M.Trap.Invalid_free) -> ());
  try
    let _ = M.Heap.malloc h 1_000_000 in
    Alcotest.fail "oom not detected"
  with M.Trap.Machine_stop (M.Trap.Trapped M.Trap.Out_of_memory) -> ()

let test_heap_zeroing () =
  let mem = M.Mem.create () in
  let h = M.Heap.create mem ~base:1000 ~limit:100_000 in
  let b = M.Heap.malloc h 4 in
  M.Mem.write mem b.M.Heap.addr 77;
  M.Heap.free h b.M.Heap.addr;
  let b2 = M.Heap.malloc h 4 in
  Alcotest.(check int) "reused block zeroed" 0 (M.Mem.read mem b2.M.Heap.addr)

(* ---------- layout ---------- *)

let test_layout_regions () =
  let open M.Layout in
  Alcotest.(check bool) "null guard" true (region_of 5 = Null);
  Alcotest.(check bool) "globals" true (region_of globals_base = Globals);
  Alcotest.(check bool) "heap" true (region_of (heap_base + 100) = Heap);
  Alcotest.(check bool) "stack" true (region_of (stack_top - 10) = Stack);
  Alcotest.(check bool) "safe" true (region_of (safe_stack_top - 5) = Safe);
  Alcotest.(check bool) "code" true (region_of (code_base + 3) = Code);
  Alcotest.(check bool) "in_safe_region" true (in_safe_region safe_base);
  Alcotest.(check bool) "slide respected" true
    (region_of ~slide:0x1000 (code_base + 0x1000) = Code)

(* ---------- loader ---------- *)

let test_loader_code_addressing () =
  let prog =
    Helpers.compile
      {|int f(int x) { return x + 1; }
        int g() { return f(1) + f(2); }
        int main() { return g(); }|}
  in
  let image = M.Loader.load prog M.Config.vanilla in
  let entry_f = M.Loader.entry_addr image "f" in
  let entry_g = M.Loader.entry_addr image "g" in
  Alcotest.(check bool) "distinct entries" true (entry_f <> entry_g);
  Alcotest.(check bool) "entries decode" true
    (M.Loader.is_function_entry image entry_f);
  (match M.Loader.decode image entry_f with
   | Some cp ->
     Alcotest.(check string) "decodes to f" "f" cp.M.Loader.cp_fn;
     Alcotest.(check int) "entry block" 0 cp.M.Loader.cp_block;
     Alcotest.(check int) "entry ip" 0 cp.M.Loader.cp_ip
   | None -> Alcotest.fail "entry does not decode");
  (* the address right after each call is a return site *)
  let sites = Hashtbl.length image.M.Loader.return_sites in
  Alcotest.(check bool) "three return sites (two in g, one in main)" true
    (sites = 3);
  (* data addresses do not decode *)
  Alcotest.(check bool) "data does not decode" true
    (M.Loader.decode image M.Layout.globals_base = None)

let test_loader_aslr_slide () =
  let prog = Helpers.compile "int main() { return 0; }" in
  let plain = M.Loader.load prog M.Config.vanilla in
  let slid = M.Loader.load prog M.Config.hardened_baseline in
  Alcotest.(check int) "no slide" 0 plain.M.Loader.slide;
  Alcotest.(check int) "aslr slide" M.Layout.aslr_slide slid.M.Loader.slide;
  Alcotest.(check int) "entry shifted by slide"
    (M.Loader.entry_addr plain "main" + M.Layout.aslr_slide)
    (M.Loader.entry_addr slid "main")

let test_loader_frame_layouts () =
  let prog =
    Helpers.compile
      {|int main() { int x; char buf[10]; gets(buf); x = buf[0]; return x; }|}
  in
  (* vanilla: everything on the regular stack, ret slot included *)
  let v = M.Loader.load prog M.Config.vanilla in
  let lv = Hashtbl.find v.M.Loader.layouts "main" in
  Alcotest.(check bool) "vanilla ret regular" false lv.M.Loader.fl_ret_on_safe;
  Alcotest.(check bool) "vanilla frame holds everything" true
    (lv.M.Loader.fl_regular_size >= 12);
  (* safe stack: ret + scalar on safe side, buffer on unsafe side *)
  let built = Levee_core.Pipeline.build Levee_core.Pipeline.Safe_stack prog in
  let s =
    M.Loader.load built.Levee_core.Pipeline.prog built.Levee_core.Pipeline.config
  in
  let ls = Hashtbl.find s.M.Loader.layouts "main" in
  Alcotest.(check bool) "safestack ret safe" true ls.M.Loader.fl_ret_on_safe;
  Alcotest.(check bool) "unsafe frame present" true ls.M.Loader.fl_has_unsafe;
  Alcotest.(check bool) "buffer on regular side" true
    (ls.M.Loader.fl_regular_size >= 10)

let test_mpx_store () =
  let s = SS.create SS.Mpx in
  SS.set s 77 (entry 5);
  Alcotest.(check bool) "mpx stores like two-level" true (SS.get s 77 <> None);
  Alcotest.(check bool) "mpx impl round-trips" true (SS.impl_of s = SS.Mpx);
  Alcotest.(check bool) "mpx lookup cheapest" true
    (SS.lookup_cost SS.Mpx < SS.lookup_cost SS.Simple_array)

let () =
  Alcotest.run "machine"
    [ ("mem",
       [ t "read/write" test_mem_rw; t "footprint" test_mem_footprint ]);
      ("safestore",
       [ t "array basic" (test_store_basic SS.Simple_array);
         t "two-level basic" (test_store_basic SS.Two_level);
         t "hashtable basic" (test_store_basic SS.Hashtable);
         t "footprint ordering" test_store_footprints;
         QCheck_alcotest.to_alcotest store_ops_equivalent ]);
      ("heap",
       [ t "alloc/free/reuse" test_heap_alloc_free;
         t "error traps" test_heap_errors;
         t "zeroing" test_heap_zeroing ]);
      ("layout", [ t "regions" test_layout_regions ]);
      ("loader",
       [ t "code addressing" test_loader_code_addressing;
         t "aslr slide" test_loader_aslr_slide;
         t "frame layouts" test_loader_frame_layouts ]);
      ("mpx", [ t "hardware store organisation" test_mpx_store ]) ]
