(* Static analysis tests: Fig. 7 sensitivity, char* heuristic, unsafe-cast
   data-flow augmentation, safe stack classification. *)

module Ty = Levee_ir.Ty
module Prog = Levee_ir.Prog
module I = Levee_ir.Instr
module An = Levee_analysis

let t name f = Alcotest.test_case name `Quick f

let ctx_of src =
  let checked, prog = Levee_minic.Lower.compile_checked src in
  let ctx =
    An.Sensitivity.create prog.Prog.tenv
      ~annotated:checked.Levee_minic.Typecheck.sensitive_structs
  in
  (ctx, prog)

let test_fig7_criterion () =
  let ctx, _ =
    ctx_of
      {|struct plain { int a; int b; };
        struct vt { int (*m)(int); };
        struct holder { int x; struct vt *table; };
        struct selfref { int v; struct selfref *next; };
        int main() { return 0; }|}
  in
  let sens = An.Sensitivity.is_sensitive ctx in
  Alcotest.(check bool) "int" false (sens Ty.Int);
  Alcotest.(check bool) "char" false (sens Ty.Char);
  Alcotest.(check bool) "int*" false (sens (Ty.Ptr Ty.Int));
  Alcotest.(check bool) "void*" true (sens (Ty.Ptr Ty.Void));
  Alcotest.(check bool) "char*" true (sens (Ty.Ptr Ty.Char));
  Alcotest.(check bool) "fn ptr" true (sens (Ty.Ptr (Ty.Fn ([ Ty.Int ], Ty.Int))));
  Alcotest.(check bool) "ptr to plain struct" false (sens (Ty.Ptr (Ty.Struct "plain")));
  Alcotest.(check bool) "ptr to vtable struct" true (sens (Ty.Ptr (Ty.Struct "vt")));
  Alcotest.(check bool) "ptr to struct holding vtable ptr" true
    (sens (Ty.Ptr (Ty.Struct "holder")));
  Alcotest.(check bool) "code-ptr-free self-referential struct" false
    (sens (Ty.Ptr (Ty.Struct "selfref")));
  Alcotest.(check bool) "ptr to ptr to fn" true
    (sens (Ty.Ptr (Ty.Ptr (Ty.Fn ([], Ty.Void)))));
  Alcotest.(check bool) "array of fn ptrs" true
    (sens (Ty.Arr (Ty.Ptr (Ty.Fn ([], Ty.Void)), 4)))

let test_annotated_struct_sensitive () =
  let ctx, _ =
    ctx_of
      {|sensitive struct ucred { int uid; int gid; };
        int main() { return 0; }|}
  in
  Alcotest.(check bool) "annotated struct ptr sensitive" true
    (An.Sensitivity.is_sensitive ctx (Ty.Ptr (Ty.Struct "ucred")))

let test_cps_criterion () =
  let ctx, _ = ctx_of "int main() { return 0; }" in
  let cps = An.Sensitivity.is_cps_sensitive ctx in
  Alcotest.(check bool) "fn ptr" true (cps (Ty.Ptr (Ty.Fn ([], Ty.Void))));
  Alcotest.(check bool) "void*" true (cps (Ty.Ptr Ty.Void));
  Alcotest.(check bool) "ptr to fn ptr NOT cps" false
    (cps (Ty.Ptr (Ty.Ptr (Ty.Fn ([], Ty.Void)))));
  Alcotest.(check bool) "int* not cps" false (cps (Ty.Ptr Ty.Int))

(* char* heuristic: string-only pointers demoted, laundering sites kept *)
let demoted_count src =
  let prog = Levee_minic.Lower.compile src in
  Hashtbl.length (An.Strheur.demoted prog)

let test_strheur_demotes_strings () =
  let n =
    demoted_count
      {|int main() {
          char *msg = "hello";
          char buf[16];
          strcpy(buf, msg);
          print_str(msg);
          return strlen(msg);
        }|}
  in
  Alcotest.(check bool) "string pointer accesses demoted" true (n > 0)

let test_strheur_keeps_laundered () =
  (* a char* that carries a function pointer must stay protected *)
  let n =
    demoted_count
      {|int f(int x) { return x; }
        char *sneak;
        int main() {
          sneak = (char*) f;
          int (*g)(int) = (int (*)(int)) sneak;
          return g(3);
        }|}
  in
  Alcotest.(check int) "laundering site not demoted" 0 n

let test_strheur_consistency () =
  (* demotion must cover loads and stores of a site together *)
  let prog =
    Levee_minic.Lower.compile
      {|char *greeting = "hi";
        int use1() { return strlen(greeting); }
        int use2() { print_str(greeting); return 0; }
        int main() { greeting = "other"; return use1() + use2(); }|}
  in
  let dem = An.Strheur.demoted prog in
  Alcotest.(check bool) "whole site demoted" true (Hashtbl.length dem >= 3)

let test_castflow () =
  let checked, prog =
    Levee_minic.Lower.compile_checked
      {|int f(int x) { return x; }
        int slot;
        int main() {
          slot = (int) f;
          int v = slot;
          int (*g)(int) = (int (*)(int)) v;
          return g(1);
        }|}
  in
  let ctx =
    An.Sensitivity.create prog.Prog.tenv
      ~annotated:checked.Levee_minic.Typecheck.sensitive_structs
  in
  let fn = Prog.find_func prog "main" in
  let forced = An.Castflow.forced_load_positions ctx fn in
  Alcotest.(check bool) "load feeding sensitive cast is forced" true
    (Hashtbl.length forced > 0)

(* regression: the forced-value walk must follow EVERY dataflow route to
   the sensitive cast, not just the syntactic origin chain. Routing the
   loaded value through [w = 0 + v] (interesting operand on the right of
   the Bin) or through a Gep base used to hide the load from the old
   origin-based walker. *)
let forced_count src fname =
  let checked, prog = Levee_minic.Lower.compile_checked src in
  let ctx =
    An.Sensitivity.create prog.Prog.tenv
      ~annotated:checked.Levee_minic.Typecheck.sensitive_structs
  in
  let fn = Prog.find_func prog fname in
  Hashtbl.length (An.Castflow.forced_load_positions ctx fn)

let test_castflow_multipath () =
  let n =
    forced_count
      {|int f(int x) { return x; }
        int slot;
        int main() {
          slot = (int) f;
          int v = slot;
          int w = 0 + v;
          int (*g)(int) = (int (*)(int)) w;
          return g(1);
        }|}
      "main"
  in
  Alcotest.(check bool) "load routed through Imm-left Bin still forced" true
    (n > 0)

let test_castflow_no_false_force () =
  (* a load whose value never reaches a sensitive cast must not be forced *)
  let n =
    forced_count
      {|int slot;
        int main() {
          slot = 7;
          int v = slot;
          int w = 0 + v;
          return w;
        }|}
      "main"
  in
  Alcotest.(check int) "pure data flow not forced" 0 n

let test_unsafe_cast_positions () =
  let checked, prog =
    Levee_minic.Lower.compile_checked
      {|int f(int x) { return x; }
        int main() {
          int v = 12345;
          int (*g)(int) = (int (*)(int)) v;
          int h = (int) f;
          return h + (g == 0);
        }|}
  in
  let ctx =
    An.Sensitivity.create prog.Prog.tenv
      ~annotated:checked.Levee_minic.Typecheck.sensitive_structs
  in
  let fn = Prog.find_func prog "main" in
  let pos = An.Castflow.unsafe_cast_positions ctx fn in
  (* exactly the int->fnptr direction produces a sensitive value; the
     fnptr->int cast is not a code-pointer forgery site *)
  Alcotest.(check int) "one unsafe-cast site" 1 (Hashtbl.length pos)

(* safe stack analysis *)
let verdicts_of src fname =
  let prog = Levee_minic.Lower.compile src in
  let fn = Prog.find_func prog fname in
  let verdicts, needs = An.Stackanalysis.classify prog.Prog.tenv fn in
  (verdicts, needs, fn)

let count_verdict verdicts v =
  Hashtbl.fold (fun _ x acc -> if x = v then acc + 1 else acc) verdicts 0

let test_stack_scalars_safe () =
  let verdicts, needs, _ =
    verdicts_of
      {|int main() { int a = 1; int b = 2; int c; c = a + b; return c; }|}
      "main"
  in
  Alcotest.(check int) "all safe"
    (Hashtbl.length verdicts)
    (count_verdict verdicts An.Stackanalysis.Safe);
  Alcotest.(check bool) "no unsafe frame" false needs

let test_stack_buffers_unsafe () =
  let verdicts, needs, _ =
    verdicts_of
      {|int main() { char buf[16]; gets(buf); return buf[0]; }|}
      "main"
  in
  Alcotest.(check bool) "needs unsafe frame" true needs;
  Alcotest.(check bool) "at least one unsafe" true
    (count_verdict verdicts An.Stackanalysis.Unsafe >= 1)

let test_stack_escape_unsafe () =
  let verdicts, needs, _ =
    verdicts_of
      {|void set(int *p, int v) { *p = v; }
        int main() { int x = 0; set(&x, 3); return x; }|}
      "main"
  in
  ignore verdicts;
  Alcotest.(check bool) "address-taken local is unsafe" true needs

let test_stack_const_index_safe () =
  let _, needs, _ =
    verdicts_of
      {|struct pair { int a; int b; };
        int main() { struct pair p; p.a = 1; p.b = 2; return p.a + p.b; }|}
      "main"
  in
  Alcotest.(check bool) "struct with const fields safe" false needs

let test_stack_dynamic_index_unsafe () =
  let _, needs, _ =
    verdicts_of
      {|int main() { int a[8]; int i; for (i = 0; i < 8; i = i + 1) { a[i] = i; }
         return a[3]; }|}
      "main"
  in
  Alcotest.(check bool) "dynamically indexed array unsafe" true needs

let test_usedef_origin () =
  let prog =
    Levee_minic.Lower.compile
      {|int g;
        int main() {
          int *p = (int*) malloc(3);
          int *q = &g;
          int *r = p + 2;
          return (q == r) + *p;
        }|}
  in
  let fn = Prog.find_func prog "main" in
  let ud = An.Usedef.build fn in
  let origins = ref [] in
  Prog.iter_instrs fn (fun i ->
      match i with
      | I.Store { ty = Ty.Ptr Ty.Int; v; _ } ->
        origins := An.Usedef.origin ud v :: !origins
      | _ -> ());
  let has o = List.mem o !origins in
  Alcotest.(check bool) "malloc origin" true (has An.Usedef.From_malloc);
  Alcotest.(check bool) "global origin" true (has (An.Usedef.From_global "g"))

(* ---------- diag: thread-unsafe-intrinsic ---------- *)

let conc_diag_src =
  {|int lk;
    int inc(int x) { return x + 1; }
    int dbl(int x) { return x * 2; }
    int (*handlers[4])(int);
    int install(int i) {
      handlers[i] = inc;
      return i;
    }
    int worker(int wid) {
      int j;
      handlers[wid] = dbl;
      mutex_lock(&lk);
      handlers[wid + 1] = inc;
      mutex_unlock(&lk);
      j = install(wid);
      return handlers[j](j);
    }
    int main() {
      int t;
      int r;
      t = thread_spawn(worker, 1);
      r = thread_join(t);
      handlers[0] = inc;
      print_int(r);
      return 0;
    }|}

let thread_unsafe_findings src =
  let prog = Levee_minic.Lower.compile src in
  let report = An.Diag.analyze prog in
  List.filter
    (fun f -> f.An.Diag.kind = "thread-unsafe-intrinsic")
    report.An.Diag.findings

let test_thread_unsafe_intrinsic () =
  let fs = thread_unsafe_findings conc_diag_src in
  Alcotest.(check int) "three unlocked sensitive accesses" 3
    (List.length fs);
  let in_fn name =
    List.length (List.filter (fun f -> f.An.Diag.func = name) fs)
  in
  Alcotest.(check int) "install flagged" 1 (in_fn "install");
  Alcotest.(check int) "worker flagged twice (store + load)" 2 (in_fn "worker");
  Alcotest.(check int) "main not spawn-reachable" 0 (in_fn "main");
  List.iter
    (fun f ->
      Alcotest.(check bool) "warning severity" true
        (f.An.Diag.severity = An.Diag.Warning))
    fs

let test_thread_unsafe_silent_when_single_threaded () =
  (* Same accesses, no thread_spawn: nothing is spawn-reachable. *)
  let src =
    {|int inc(int x) { return x + 1; }
      int (*handlers[4])(int);
      int install(int i) { handlers[i] = inc; return i; }
      int main() { install(0); return handlers[0](1); }|}
  in
  Alcotest.(check int) "no findings" 0
    (List.length (thread_unsafe_findings src))

let () =
  Alcotest.run "analysis"
    [ ("sensitivity",
       [ t "Fig. 7 criterion" test_fig7_criterion;
         t "programmer annotation" test_annotated_struct_sensitive;
         t "CPS criterion" test_cps_criterion ]);
      ("char* heuristic",
       [ t "demotes string pointers" test_strheur_demotes_strings;
         t "keeps laundered code pointers" test_strheur_keeps_laundered;
         t "site-level consistency" test_strheur_consistency ]);
      ("cast dataflow",
       [ t "forces loads feeding sensitive casts" test_castflow;
         t "multi-path value routing" test_castflow_multipath;
         t "no false forcing on pure data" test_castflow_no_false_force;
         t "unsafe-cast positions" test_unsafe_cast_positions ]);
      ("safe stack",
       [ t "scalars safe" test_stack_scalars_safe;
         t "buffers unsafe" test_stack_buffers_unsafe;
         t "escapes unsafe" test_stack_escape_unsafe;
         t "const fields safe" test_stack_const_index_safe;
         t "dynamic index unsafe" test_stack_dynamic_index_unsafe ]);
      ("usedef", [ t "origin tracing" test_usedef_origin ]);
      ("diag",
       [ t "thread-unsafe-intrinsic flags unlocked accesses"
           test_thread_unsafe_intrinsic;
         t "silent without thread_spawn"
           test_thread_unsafe_silent_when_single_threaded ]) ]
