(* Workload integrity tests: every evaluation workload must terminate
   cleanly under every protection with an identical checksum — protections
   must never change program behaviour. Overhead-shape assertions encode
   the paper's qualitative findings. *)

module P = Levee_core.Pipeline
module W = Levee_workloads
module M = Levee_machine
module Stats = Levee_core.Stats

let t name f = Alcotest.test_case name f

let protections = [ P.Vanilla; P.Hardened; P.Safe_stack; P.Cfi; P.Cps; P.Cpi;
                    P.Softbound ]

let run_all (w : W.Workload.t) =
  List.map (fun p -> (p, W.Workload.run ~protection:p w)) protections

let check_differential (w : W.Workload.t) () =
  let results = run_all w in
  let _, base = List.hd results in
  (match base.M.Interp.outcome with
   | M.Trap.Exit 0 -> ()
   | o ->
     Alcotest.failf "%s vanilla: %s" w.W.Workload.name (M.Trap.outcome_to_string o));
  List.iter
    (fun (p, (r : M.Interp.result)) ->
      (match r.M.Interp.outcome with
       | M.Trap.Exit 0 -> ()
       | o ->
         Alcotest.failf "%s under %s: %s" w.W.Workload.name (P.protection_name p)
           (M.Trap.outcome_to_string o));
      Alcotest.(check bool)
        (Printf.sprintf "%s checksum under %s" w.W.Workload.name
           (P.protection_name p))
        true
        (r.M.Interp.checksum = base.M.Interp.checksum
         && r.M.Interp.output = base.M.Interp.output))
    results

let differential_cases =
  List.map
    (fun (w : W.Workload.t) ->
      t w.W.Workload.name `Slow (check_differential w))
    (W.Spec.all @ W.Phoronix.all @ W.Webstack.all @ W.Base_system.all)

let overhead prot (w : W.Workload.t) =
  let base = W.Workload.run ~protection:P.Vanilla w in
  let r = W.Workload.run ~protection:prot w in
  Levee_support.Stats.overhead_pct ~base:base.M.Interp.cycles
    ~instrumented:r.M.Interp.cycles

let test_cpp_heavier_than_c () =
  (* Table 1's structure: the C++ group costs CPI more than the C group *)
  let avg l = Levee_support.Stats.mean l in
  let c = avg (List.map (overhead P.Cpi) W.Spec.c_only) in
  let cpp =
    avg
      (List.map (overhead P.Cpi)
         (List.filter (fun w -> w.W.Workload.lang = W.Workload.Cpp) W.Spec.all))
  in
  Alcotest.(check bool) "C++ CPI overhead exceeds C" true (cpp > c)

let test_cps_cheaper_than_cpi () =
  List.iter
    (fun name ->
      let w = W.Spec.find name in
      Alcotest.(check bool) (name ^ ": CPS <= CPI") true
        (overhead P.Cps w <= overhead P.Cpi w +. 0.2))
    [ "400.perlbench"; "471.omnetpp"; "483.xalancbmk"; "447.dealII" ]

let test_safestack_near_zero () =
  (* |safe stack overhead| stays small; namd must be a speedup *)
  List.iter
    (fun (w : W.Workload.t) ->
      let o = overhead P.Safe_stack w in
      Alcotest.(check bool)
        (w.W.Workload.name ^ " safestack within 6%") true
        (o < 6.0))
    W.Spec.all;
  Alcotest.(check bool) "namd speeds up" true
    (overhead P.Safe_stack (W.Spec.find "444.namd") < -1.0)

let test_softbound_much_heavier () =
  List.iter
    (fun name ->
      let w = W.Spec.find name in
      let sb = overhead P.Softbound w in
      let cpi = overhead P.Cpi w in
      Alcotest.(check bool) (name ^ ": SoftBound >> CPI") true (sb > cpi +. 20.0))
    [ "401.bzip2"; "447.dealII"; "458.sjeng"; "464.h264ref" ]

let test_outliers () =
  (* omnetpp and xalancbmk are the CPI outliers; the dynamic web page is
     the worst of the web stack *)
  let omnetpp = overhead P.Cpi (W.Spec.find "471.omnetpp") in
  let mcf = overhead P.Cpi (W.Spec.find "429.mcf") in
  Alcotest.(check bool) "omnetpp >> mcf" true (omnetpp > mcf +. 5.0);
  let dynamic = overhead P.Cpi W.Webstack.dynamic_page in
  let static_ = overhead P.Cpi W.Webstack.static_page in
  Alcotest.(check bool) "dynamic page worst" true (dynamic > static_)

let test_table2_shapes () =
  (* MOCPI fractions: omnetpp/xalancbmk high, sjeng/milc low *)
  let mocpi name =
    Stats.mo_instrumented (P.build P.Cpi (W.Workload.compile (W.Spec.find name))).P.stats
  in
  Alcotest.(check bool) "omnetpp heavily instrumented" true
    (mocpi "471.omnetpp" > 0.10);
  Alcotest.(check bool) "sjeng barely instrumented" true (mocpi "458.sjeng" < 0.02);
  Alcotest.(check bool) "milc barely instrumented" true (mocpi "433.milc" < 0.02)

let test_fnustack_shapes () =
  (* every workload has some functions with unsafe frames, but never all *)
  List.iter
    (fun name ->
      let w = W.Spec.find name in
      let s = (P.build P.Safe_stack (W.Workload.compile w)).P.stats in
      let f = Stats.fnustack s in
      Alcotest.(check bool) (name ^ " fnustack in (0,1)") true (f > 0.0 && f < 1.0))
    [ "458.sjeng"; "444.namd"; "401.bzip2" ]

let test_memory_overheads () =
  (* array store costs much more memory than hashtable under CPI *)
  let w = W.Spec.find "471.omnetpp" in
  let prog = W.Workload.compile w in
  let footprint impl =
    let b = P.build ~store_impl:impl P.Cpi prog in
    (M.Interp.run_program ~fuel:w.W.Workload.fuel b.P.prog b.P.config)
      .M.Interp.store_footprint
  in
  Alcotest.(check bool) "array >> hashtable memory" true
    (footprint M.Safestore.Simple_array > 2 * footprint M.Safestore.Hashtable)

let () =
  Alcotest.run "workloads"
    [ ("differential", differential_cases);
      ("overhead shapes",
       [ t "C++ heavier than C" `Slow test_cpp_heavier_than_c;
         t "CPS cheaper than CPI" `Slow test_cps_cheaper_than_cpi;
         t "safe stack near zero, namd negative" `Slow test_safestack_near_zero;
         t "SoftBound much heavier" `Slow test_softbound_much_heavier;
         t "outliers" `Slow test_outliers ]);
      ("static statistics",
       [ t "Table 2 MO shapes" `Quick test_table2_shapes;
         t "FNUStack shapes" `Quick test_fnustack_shapes ]);
      ("memory", [ t "store organisation footprints" `Slow test_memory_overheads ]) ]
