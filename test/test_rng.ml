(* Unit tests for Rng.split: split streams must be deterministic
   (functions of the parent seed and split order alone) and pairwise
   disjoint over a sensible prefix, so per-thread/per-task streams never
   alias each other or the parent. *)

module Rng = Levee_support.Rng

let take n rng = List.init n (fun _ -> Rng.next_int64 rng)

let test_split_deterministic () =
  let a = Rng.create 42 in
  let b = Rng.create 42 in
  let a1 = Rng.split a and b1 = Rng.split b in
  let a2 = Rng.split a and b2 = Rng.split b in
  Alcotest.(check (list int64))
    "first split stream reproducible" (take 32 a1) (take 32 b1);
  Alcotest.(check (list int64))
    "second split stream reproducible" (take 32 a2) (take 32 b2);
  Alcotest.(check (list int64))
    "parent stream reproducible after splits" (take 32 a) (take 32 b)

let test_split_disjoint () =
  let parent = Rng.create 7 in
  let children = List.init 8 (fun _ -> Rng.split parent) in
  let streams = List.map (take 64) (parent :: children) in
  let seen = Hashtbl.create 1024 in
  List.iteri
    (fun i s ->
      List.iter
        (fun v ->
          (match Hashtbl.find_opt seen v with
           | Some j ->
             Alcotest.failf "streams %d and %d share output %Ld" j i v
           | None -> ());
          Hashtbl.replace seen v i)
        s)
    streams

let test_split_differs_by_order () =
  (* The nth split of a parent differs from the (n+1)th: split order is
     part of the stream identity. *)
  let p = Rng.create 99 in
  let c1 = Rng.split p in
  let c2 = Rng.split p in
  Alcotest.(check bool)
    "sibling streams differ" false
    (take 16 c1 = take 16 c2)

let () =
  Alcotest.run "rng"
    [ ( "split",
        [ Alcotest.test_case "deterministic" `Quick test_split_deterministic;
          Alcotest.test_case "disjoint" `Quick test_split_disjoint;
          Alcotest.test_case "order-sensitive" `Quick test_split_differs_by_order
        ] )
    ]
