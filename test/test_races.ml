(* Static race detector, safe-region separation certificates, and the
   static-vs-dynamic cross-validation harness.

   The headline property (the ISSUE's acceptance bar) is empirical
   soundness: every race the dynamic Eraser detector observes on the
   corpus, under any scheduler seed 0..7 and either protection, is also
   flagged statically. The golden JSON test pins the canonical finding
   order of the levee-analyze/2 document byte-for-byte. *)

module I = Levee_ir.Instr
module Prog = Levee_ir.Prog
module V = Levee_ir.Verify
module P = Levee_core.Pipeline
module An = Levee_analysis
module X = Levee_harness.Crossval

let t name f = Alcotest.test_case name `Quick f

let subject name =
  List.find (fun (s : X.subject) -> s.X.xname = name) X.corpus

let compile name = Levee_minic.Lower.compile ~name (subject name).X.source

(* First instruction in [fname] matching [pred], as (block, idx). *)
let find_pos prog fname pred =
  let fn = Prog.find_func prog fname in
  let res = ref None in
  Array.iter
    (fun (b : Prog.block) ->
      Array.iteri
        (fun idx ins ->
          if !res = None && pred ins then res := Some (b.Prog.bid, idx))
        b.Prog.instrs)
    fn.Prog.blocks;
  match !res with
  | Some p -> p
  | None -> Alcotest.failf "no matching instruction in %s" fname

(* ---------- lockset contexts ---------- *)

let test_lockset_dcl () =
  let prog = compile "dcl" in
  let pt = An.Pointsto.analyze prog in
  let ls = An.Lockset.analyze prog pt in
  Alcotest.(check bool) "dcl spawns" true (An.Lockset.has_spawn ls);
  let ctx fname (block, idx) =
    match An.Lockset.ctx_at ls ~fname ~block ~idx with
    | Some c -> c
    | None -> Alcotest.failf "no context at %s@b%d.%d" fname block idx
  in
  (* The unlocked fast-path read of `ready` holds nothing... *)
  let load_ready =
    find_pos prog "user" (function
      | I.Load { addr = I.Glob "ready"; _ } -> true
      | _ -> false)
  in
  let c_load = ctx "user" load_ready in
  Alcotest.(check bool) "fast path lockset empty" true (c_load.An.Lockset.cx_locks = []);
  (* ...while the double-checked install of `handler` holds the mutex. *)
  let store_handler =
    find_pos prog "user" (function
      | I.Store { addr = I.Glob "handler"; _ } -> true
      | _ -> false)
  in
  let c_store = ctx "user" store_handler in
  Alcotest.(check bool) "locked install holds lk" true
    (List.mem (An.Pointsto.O_global "lk") c_store.An.Lockset.cx_locks);
  (* user runs under both spawn classes; neither is multi-instance. *)
  Alcotest.(check int) "two spawn classes" 2
    (List.length c_load.An.Lockset.cx_classes);
  List.iter
    (fun c ->
      Alcotest.(check bool) "single-instance class" false
        (An.Lockset.multi_class ls c))
    c_load.An.Lockset.cx_classes;
  Alcotest.(check bool) "cross-class accesses overlap" true
    (An.Lockset.may_overlap ls c_load c_store);
  (* main after both joins is concurrent with nothing. *)
  let print_pos =
    find_pos prog "main" (function
      | I.Intrin { op = I.I_print_int; _ } -> true
      | _ -> false)
  in
  let c_main = ctx "main" print_pos in
  Alcotest.(check bool) "main post-join not live" false
    c_main.An.Lockset.cx_mainlive;
  Alcotest.(check bool) "main post-join overlaps nothing" false
    (An.Lockset.may_overlap ls c_main c_store)

(* ---------- static verdicts over the corpus ---------- *)

let race_keys prog =
  List.map (fun (r : An.Racecheck.race) -> r.An.Racecheck.rc_obj)
    (An.Racecheck.races prog)

let test_static_verdicts () =
  Alcotest.(check (list string)) "racy_counter" [ "global:counter" ]
    (race_keys (compile "racy_counter"));
  Alcotest.(check (list string)) "dcl" [ "global:handler"; "global:ready" ]
    (race_keys (compile "dcl"));
  Alcotest.(check (list string)) "guarded_web" []
    (race_keys (compile "guarded_web"));
  Alcotest.(check (list string)) "registry (conc.c)" []
    (race_keys (compile "registry"));
  (* The function-pointer race is safe-region storage; the counter race
     is plain shared data. *)
  let storages name =
    List.map (fun (r : An.Racecheck.race) -> (r.An.Racecheck.rc_obj, r.An.Racecheck.rc_storage))
      (An.Racecheck.races (compile name))
  in
  Alcotest.(check (list (pair string string))) "dcl storages"
    [ ("global:handler", "safe-region"); ("global:ready", "shared-data") ]
    (storages "dcl");
  Alcotest.(check (list (pair string string))) "counter storage"
    [ ("global:counter", "shared-data") ]
    (storages "racy_counter")

(* ---------- separation certificates and replay ---------- *)

let test_separation_replay () =
  let build name = (P.build P.Cpi (compile name)).P.prog in
  List.iter
    (fun name ->
      let p = build name in
      let sep = An.Racecheck.separation p in
      Alcotest.(check bool) (name ^ " fully certified") true
        (sep.An.Racecheck.sp_unproven = [] && sep.An.Racecheck.sp_certs <> []);
      Alcotest.(check bool) (name ^ " replay ok") true
        (sep.An.Racecheck.sp_replay = Ok ()))
    [ "racy_counter"; "dcl"; "guarded_web"; "registry" ];
  (* A tampered certificate (claiming fewer roots than the store can
     reach) must be rejected by the independent replay. *)
  let p = build "guarded_web" in
  let sep = An.Racecheck.separation p in
  let model = sep.An.Racecheck.sp_model in
  (match sep.An.Racecheck.sp_certs with
   | c :: rest ->
     let forged = { c with V.sc_roots = [] } in
     (match V.check_separation p ~model (forged :: rest) with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "forged certificate replayed")
   | [] -> Alcotest.fail "no certificates to tamper with");
  (* A tampered model (hiding a safe root) must fail the audit: the
     replay re-derives the protected set and notices the omission. *)
  let pd = build "dcl" in
  let sepd = An.Racecheck.separation pd in
  let md = sepd.An.Racecheck.sp_model in
  (match md.V.sm_safe with
   | _ :: tl ->
     let hidden = { md with V.sm_safe = tl } in
     (match V.check_separation pd ~model:hidden sepd.An.Racecheck.sp_certs with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "hidden safe root passed the audit")
   | [] -> Alcotest.fail "dcl CPI build has no safe accesses")

(* ---------- golden JSON: canonical order, byte-stable ---------- *)

let golden_racy_counter =
  {|{
"schema":"levee-analyze/2",
"source":"racy_counter.c",
"findings":[
{"severity":"warning","kind":"potential-race","func":"worker","block":2,"idx":0,"msg":"global:counter (shared-data) is written without a common lock by concurrent threads (2 access sites)"}
],
"functions":[
{"name":"worker","mem_ops":9,"sensitive":0,"sensitive_pct":0.0,"forced":0,"char_demoted":0,"demotable":0,"indirect_calls":0},
{"name":"main","mem_ops":6,"sensitive":0,"sensitive_pct":0.0,"forced":0,"char_demoted":0,"demotable":0,"indirect_calls":0}
],
"races":[
{"object":"global:counter","storage":"shared-data","sites":[{"func":"worker","block":2,"idx":0,"write":false,"locked":false},{"func":"worker","block":2,"idx":2,"write":true,"locked":false}]}
],
"separation":{"plain_stores":7,"certified":7,"unproven":0,"opaque_safe":0,"replay_ok":true},
"cpi":{"checks_elided":0,"mem_ops_demoted":0},
"totals":{"errors":0,"warnings":1,"info":0}
}
|}

let full_report name =
  let prog = Levee_minic.Lower.compile ~name:(name ^ ".c") (subject name).X.source in
  let report = An.Diag.analyze ~name:(name ^ ".c") prog in
  let report = An.Diag.add_races report (An.Racecheck.races prog) in
  let built = P.build P.Cpi prog in
  An.Diag.add_separation report (An.Racecheck.separation built.P.prog)

let test_golden_json () =
  let r = full_report "racy_counter" in
  Alcotest.(check string) "levee-analyze/2 golden" golden_racy_counter
    (An.Diag.to_json ~elided:0 ~demoted:0 r);
  (* Two independently recomputed reports agree byte-for-byte. *)
  let r2 = full_report "racy_counter" in
  Alcotest.(check string) "recomputed byte-identical"
    (An.Diag.to_json r) (An.Diag.to_json r2)

(* ---------- the soundness property: seeds 0..7, both protections ---- *)

let test_crossval_soundness () =
  let rep = X.run ~jobs:2 ~seeds:[ 0; 1; 2; 3; 4; 5; 6; 7 ] X.corpus in
  List.iter
    (fun (name, ok) -> Alcotest.(check bool) name true ok)
    (X.invariants rep);
  (* Spell the no-false-negative inclusion out per cell: every key the
     dynamic detector reported is covered by that subject's static set. *)
  List.iter
    (fun v ->
      List.iter
        (fun (c : X.cell) ->
          List.iter
            (fun k ->
              Alcotest.(check bool)
                (Printf.sprintf "%s seed %d key %s covered" v.X.v_subject
                   c.X.c_seed k)
                true
                (X.covers v.X.v_static k))
            c.X.c_races)
        v.X.v_cells)
    (X.verdicts rep);
  (* Racy subjects are witnessed dynamically under every seed of at
     least one protection -- the static verdicts are not vacuous. *)
  List.iter
    (fun v ->
      if v.X.v_racy then
        Alcotest.(check bool)
          (v.X.v_subject ^ " dynamically witnessed") true
          (List.exists (fun (c : X.cell) -> c.X.c_races <> []) v.X.v_cells))
    (X.verdicts rep)

(* ---------- the faults link ---------- *)

let test_faults_link () =
  let fcs = X.faults_cross ~jobs:2 () in
  Alcotest.(check bool) "campaign subjects analyzed" true (fcs <> []);
  List.iter
    (fun (fc : X.faults_cross) ->
      Alcotest.(check bool) (fc.X.fc_subject ^ " fully certified") true
        (fc.X.fc_unproven = 0 && fc.X.fc_replay_ok))
    fcs;
  Alcotest.(check bool) "certified implies no cpi hijack" true
    (X.faults_consistent fcs)

let () =
  Alcotest.run "races"
    [ ( "static",
        [ t "lockset contexts on dcl" test_lockset_dcl;
          t "corpus verdicts" test_static_verdicts;
          t "separation certificates replay" test_separation_replay;
          t "golden levee-analyze/2 json" test_golden_json ] );
      ( "crossval",
        [ t "soundness over seeds 0..7" test_crossval_soundness;
          t "faults certification link" test_faults_link ] ) ]
