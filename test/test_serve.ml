(* The resilient-server campaign: availability fault kinds on the
   machine, the Serve harness invariants, golden rows for one cell of
   the smoke matrix, and --jobs determinism of the levee-serve/1
   document. *)

module M = Levee_machine
module P = Levee_core.Pipeline
module A = Levee_attacks
module H = Levee_harness
module W = Levee_workloads

let t name f = Alcotest.test_case name `Quick f

(* ---------- Stall / Worker_kill on the machine ---------- *)

let image src =
  let prog = Helpers.compile src in
  let b = P.build P.Vanilla prog in
  M.Loader.load b.P.prog b.P.config

let stall_src =
  {|int main() {
      int i; int s;
      s = 0;
      for (i = 0; i < 100; i = i + 1) { s = (s + i) & 65535; }
      checksum(s);
      return 0;
    }|}

let test_stall_adds_cycles () =
  let img = image stall_src in
  let base = M.Interp.run img in
  let stalled =
    M.Interp.run ~faults:[ (50, M.Interp.Stall { cycles = 777 }) ] img
  in
  Alcotest.(check int) "outcome preserved" 0
    (match stalled.M.Interp.outcome with M.Trap.Exit c -> c | _ -> -1);
  Alcotest.(check int) "checksum untouched" base.M.Interp.checksum
    stalled.M.Interp.checksum;
  Alcotest.(check int) "exactly the stall cycles added"
    (base.M.Interp.cycles + 777)
    stalled.M.Interp.cycles

let kill_src =
  {|int worker(int x) {
      int i; int s;
      s = 0;
      for (i = 0; i < 500; i = i + 1) { s = (s + i) & 65535; }
      return 42;
    }
    int main() {
      int t; int r;
      t = thread_spawn(worker, 1);
      r = thread_join(t);
      checksum(r);
      print_int(r);
      return 0;
    }|}

let test_worker_kill_join_observes () =
  let img = image kill_src in
  let base = M.Interp.run img in
  Alcotest.(check int) "baseline joins 42" 42 base.M.Interp.checksum;
  (* Kill the spawned worker mid-loop: the join must observe -1, and the
     machine keeps running to a normal exit. *)
  let killed =
    M.Interp.run ~faults:[ (300, M.Interp.Worker_kill { tid = 1 }) ] img
  in
  (match killed.M.Interp.outcome with
   | M.Trap.Exit 0 -> ()
   | o -> Alcotest.failf "killed-worker run: %s" (M.Trap.outcome_to_string o));
  (* the checksum fold masks words to 62 bits, so -1 lands as the mask *)
  Alcotest.(check int) "join observes -1" 0x3FFF_FFFF_FFFF_FFFF
    killed.M.Interp.checksum;
  Alcotest.(check string) "main printed the -1" "-1\n" killed.M.Interp.output

let test_worker_kill_main_crashes () =
  let img = image kill_src in
  match
    (M.Interp.run ~faults:[ (300, M.Interp.Worker_kill { tid = 0 }) ] img)
      .M.Interp.outcome
  with
  | M.Trap.Crash msg when Helpers.contains msg "worker-kill" -> ()
  | o -> Alcotest.failf "kill main: %s" (M.Trap.outcome_to_string o)

let test_worker_kill_invalid_tid_noop () =
  let img = image kill_src in
  let base = M.Interp.run img in
  let r =
    M.Interp.run ~faults:[ (300, M.Interp.Worker_kill { tid = 5 }) ] img
  in
  Alcotest.(check int) "invalid tid is a no-op (checksum)"
    base.M.Interp.checksum r.M.Interp.checksum;
  Alcotest.(check int) "invalid tid is a no-op (cycles)" base.M.Interp.cycles
    r.M.Interp.cycles

(* ---------- Faultplan availability actions ---------- *)

let test_faultplan_availability () =
  let open A.Faultplan in
  let degrade =
    make ~name:"degrade"
      [ { step = 10; action = Stall { cycles = 100 } };
        { step = 20; action = Kill_worker { tid = 1 } } ]
  in
  let corrupt =
    make ~name:"corrupt"
      [ { step = 10; action = Write { site = Stack 4; value = Value 1 } } ]
  in
  Alcotest.(check bool) "stall/kill stay inside the attacker model" true
    (within_attacker_model degrade);
  Alcotest.(check bool) "degrade plan detected" true
    (has_availability_faults degrade);
  Alcotest.(check bool) "write-only plan is not a degrade plan" false
    (has_availability_faults corrupt);
  Alcotest.(check bool) "availability faults are not safe tampers" false
    (pure_safe_tamper degrade);
  let img = image stall_src in
  match resolve ~reference:img ~deployed:img degrade with
  | [ (10, M.Interp.Stall { cycles = 100 });
      (20, M.Interp.Worker_kill { tid = 1 }) ] -> ()
  | _ -> Alcotest.fail "resolve must map Stall/Kill_worker verbatim"

(* ---------- the campaign: golden rows + invariants ---------- *)

(* One shared smoke run (12k requests/cell, seeds 0-1, faults on): the
   golden rows below pin the vanilla seed-0 cell byte-for-byte, so any
   change to the simulator, the cost model or the calibration workload
   shows up as an explicit re-baseline. *)
let smoke_report = lazy (H.Serve.run ~jobs:2 H.Serve.smoke)

let vanilla0 () =
  match Lazy.force smoke_report with
  | { H.Serve.rep_cells = c :: _; _ } -> c
  | _ -> Alcotest.fail "smoke report has no cells"

let test_golden_calibration () =
  let c = vanilla0 () in
  Alcotest.(check (array int)) "per-class service cycles (vanilla)"
    [| 215; 681; 1495 |] c.H.Serve.c_svc

let test_golden_accounting () =
  let c = vanilla0 () in
  Alcotest.(check int) "arrivals" 12_000 c.H.Serve.c_arrivals;
  Alcotest.(check int) "served" 8006 c.H.Serve.c_served;
  Alcotest.(check int) "shed" 3899 c.H.Serve.c_shed;
  Alcotest.(check int) "timed out" 95 c.H.Serve.c_timed_out;
  Alcotest.(check int) "retried" 712 c.H.Serve.c_retried;
  Alcotest.(check int) "workers killed" 2 c.H.Serve.c_killed;
  Alcotest.(check int) "breaker trips" 22 c.H.Serve.c_trips

let test_golden_latency_histogram () =
  let c = vanilla0 () in
  Alcotest.(check int) "p50" 2537 c.H.Serve.c_p50;
  Alcotest.(check int) "p99" 31600 c.H.Serve.c_p99;
  Alcotest.(check int) "p999" 38346 c.H.Serve.c_p999;
  Alcotest.(check int) "max" 39612 c.H.Serve.c_max;
  Alcotest.(check (list (pair int int))) "log2 latency histogram"
    [ (128, 598); (256, 385); (512, 1328); (1024, 1586); (2048, 262);
      (4096, 518); (8192, 2813); (16384, 459); (32768, 57) ]
    c.H.Serve.c_hist

let test_invariants_hold () =
  let rep = Lazy.force smoke_report in
  List.iter
    (fun (name, ok) ->
      Alcotest.(check bool) ("invariant: " ^ name) true ok)
    (H.Serve.invariants rep);
  Alcotest.(check bool) "invariants_ok" true (H.Serve.invariants_ok rep)

let test_accounting_every_cell () =
  let rep = Lazy.force smoke_report in
  List.iter
    (fun c ->
      Alcotest.(check int)
        (Printf.sprintf "cell (%s, seed %d) accounts every request"
           (P.protection_name c.H.Serve.c_protection)
           c.H.Serve.c_seed)
        c.H.Serve.c_arrivals
        (c.H.Serve.c_served + c.H.Serve.c_shed + c.H.Serve.c_timed_out))
    rep.H.Serve.rep_cells;
  (* the faulted smoke matrix really exercises degradation *)
  Alcotest.(check bool) "some cell shed or retried" true
    (List.exists
       (fun c -> c.H.Serve.c_shed + c.H.Serve.c_retried > 0)
       rep.H.Serve.rep_cells)

let test_cpi_probes_never_hijacked () =
  let rep = Lazy.force smoke_report in
  List.iter
    (fun c ->
      if c.H.Serve.c_protection = P.Cpi then
        List.iter
          (fun p ->
            Alcotest.(check bool)
              (Printf.sprintf "cpi seed %d plan %s not hijacked"
                 c.H.Serve.c_seed p.H.Serve.p_plan)
              true
              (p.H.Serve.p_class <> "hijacked"))
          c.H.Serve.c_probes)
    rep.H.Serve.rep_cells

let test_jobs_determinism () =
  let j2 = H.Serve.to_json (Lazy.force smoke_report) in
  let j1 = H.Serve.to_json (H.Serve.run ~jobs:1 H.Serve.smoke) in
  Alcotest.(check string) "levee-serve/1 byte-identical across jobs" j2 j1

let test_records_shape () =
  let rep = Lazy.force smoke_report in
  let recs = H.Serve.to_records ~commit:"test" rep in
  Alcotest.(check int) "one record per cell"
    (List.length rep.H.Serve.rep_cells)
    (List.length recs);
  let module R = Levee_support.Runstore in
  let r = List.hd recs in
  Alcotest.(check string) "kind" "serve" r.R.kind;
  Alcotest.(check string) "config names the cell"
    "serve-vanilla-w4-sh4-r12000" r.R.config;
  List.iter
    (fun field ->
      Alcotest.(check bool) ("metric present: " ^ field) true
        (List.mem_assoc field r.R.metrics))
    [ "arrivals"; "served"; "shed"; "timed_out"; "retried";
      "killed_workers"; "breaker_trips"; "p50_cycles"; "p99_cycles";
      "p999_cycles"; "invariants_ok" ];
  (* every gated serve metric has a tolerance entry out of the box *)
  List.iter
    (fun field ->
      Alcotest.(check bool) ("tolerance covers " ^ field) true
        (List.mem_assoc field R.default_tolerances))
    [ "arrivals"; "served"; "shed"; "timed_out"; "retried";
      "killed_workers"; "breaker_trips"; "p50_cycles"; "p99_cycles";
      "p999_cycles" ]

let test_arg_validation () =
  let rejects msg f =
    match f () with
    | exception Invalid_argument m when Helpers.contains m msg -> ()
    | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
    | _ -> Alcotest.failf "expected Invalid_argument naming %s" msg
  in
  rejects "--workers" (fun () ->
      H.Serve.run { H.Serve.smoke with H.Serve.workers = 0 });
  rejects "--workers" (fun () ->
      H.Serve.run
        { H.Serve.smoke with H.Serve.workers = W.Webstack.max_workers + 1 });
  rejects "--shards" (fun () ->
      H.Serve.run { H.Serve.smoke with H.Serve.shards = 99 });
  rejects "--threads" (fun () -> W.Webstack.concurrent ~threads:8)

let () =
  Alcotest.run "serve"
    [ ( "machine faults",
        [ t "stall adds cycles" test_stall_adds_cycles;
          t "worker kill: join observes -1" test_worker_kill_join_observes;
          t "worker kill: main crashes" test_worker_kill_main_crashes;
          t "worker kill: invalid tid no-op"
            test_worker_kill_invalid_tid_noop;
          t "faultplan availability actions" test_faultplan_availability ] );
      ( "campaign",
        [ t "golden calibration" test_golden_calibration;
          t "golden accounting row" test_golden_accounting;
          t "golden latency histogram" test_golden_latency_histogram;
          t "invariants hold" test_invariants_hold;
          t "every cell accounts every request" test_accounting_every_cell;
          t "cpi probes never hijacked" test_cpi_probes_never_hijacked;
          t "byte-identical across jobs" test_jobs_determinism;
          t "run-store records + tolerances" test_records_shape;
          t "argument validation names the flag" test_arg_validation ] ) ]
