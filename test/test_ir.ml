(* Unit tests for the IR substrate: types, layout arithmetic, builder,
   printer, verifier and program cloning. *)

module Ty = Levee_ir.Ty
module I = Levee_ir.Instr
module Prog = Levee_ir.Prog
module B = Levee_ir.Builder
module V = Levee_ir.Verify

let tenv_with_node () =
  let tenv = Ty.create_env () in
  Ty.define_struct tenv "node"
    [ ("value", Ty.Int); ("next", Ty.Ptr (Ty.Struct "node"));
      ("handler", Ty.Ptr (Ty.Fn ([ Ty.Int ], Ty.Int))) ];
  tenv

let test_sizes () =
  let tenv = tenv_with_node () in
  Alcotest.(check int) "int" 1 (Ty.size_of tenv Ty.Int);
  Alcotest.(check int) "char" 1 (Ty.size_of tenv Ty.Char);
  Alcotest.(check int) "ptr" 1 (Ty.size_of tenv (Ty.Ptr Ty.Void));
  Alcotest.(check int) "array" 12 (Ty.size_of tenv (Ty.Arr (Ty.Int, 12)));
  Alcotest.(check int) "2d array" 24 (Ty.size_of tenv (Ty.Arr (Ty.Arr (Ty.Char, 8), 3)));
  Alcotest.(check int) "struct" 3 (Ty.size_of tenv (Ty.Struct "node"));
  Alcotest.(check int) "array of struct" 15
    (Ty.size_of tenv (Ty.Arr (Ty.Struct "node", 5)))

let test_field_offsets () =
  let tenv = tenv_with_node () in
  let off, ty = Ty.field_offset tenv "node" "value" in
  Alcotest.(check int) "value offset" 0 off;
  Alcotest.(check bool) "value ty" true (Ty.equal ty Ty.Int);
  let off, _ = Ty.field_offset tenv "node" "next" in
  Alcotest.(check int) "next offset" 1 off;
  let off, ty = Ty.field_offset tenv "node" "handler" in
  Alcotest.(check int) "handler offset" 2 off;
  Alcotest.(check bool) "handler is code ptr" true (Ty.is_code_pointer ty)

let test_type_predicates () =
  Alcotest.(check bool) "void* universal" true (Ty.is_universal_pointer (Ty.Ptr Ty.Void));
  Alcotest.(check bool) "char* universal" true (Ty.is_universal_pointer (Ty.Ptr Ty.Char));
  Alcotest.(check bool) "int* not universal" false (Ty.is_universal_pointer (Ty.Ptr Ty.Int));
  Alcotest.(check bool) "fn ptr is code ptr" true
    (Ty.is_code_pointer (Ty.Ptr (Ty.Fn ([], Ty.Void))));
  Alcotest.(check bool) "int* not code ptr" false (Ty.is_code_pointer (Ty.Ptr Ty.Int))

let test_type_equal () =
  let f1 = Ty.Fn ([ Ty.Int; Ty.Ptr Ty.Char ], Ty.Int) in
  let f2 = Ty.Fn ([ Ty.Int; Ty.Ptr Ty.Char ], Ty.Int) in
  let f3 = Ty.Fn ([ Ty.Int ], Ty.Int) in
  Alcotest.(check bool) "fn equal" true (Ty.equal f1 f2);
  Alcotest.(check bool) "fn not equal" false (Ty.equal f1 f3);
  Alcotest.(check bool) "to_string" true
    (String.length (Ty.to_string (Ty.Ptr f1)) > 0)

let build_simple () =
  let p = Prog.create () in
  let b = B.create ~name:"f" ~params:[ ("x", Ty.Int) ] ~ret_ty:Ty.Int in
  let slot = B.alloca b Ty.Int in
  B.store b Ty.Int (I.Reg (B.param_reg b 0)) (I.Reg slot);
  let v = B.load b Ty.Int (I.Reg slot) in
  let d = B.bin b I.Add (I.Reg v) (I.Imm 1) in
  B.set_term b (I.Ret (Some (I.Reg d)));
  Prog.add_func p (B.finish b);
  p

let test_builder () =
  let p = build_simple () in
  let fn = Prog.find_func p "f" in
  Alcotest.(check int) "one block" 1 (Array.length fn.Prog.blocks);
  Alcotest.(check int) "four instrs" 4 (Array.length fn.Prog.blocks.(0).Prog.instrs);
  (match V.program_result p with
   | Ok () -> ()
   | Error e -> Alcotest.failf "verify: %s" e)

let test_printer () =
  let p = build_simple () in
  let s = Levee_ir.Printer.program p in
  Alcotest.(check bool) "mentions func" true
    (Helpers.contains s "func f");
  Alcotest.(check bool) "mentions alloca" true
    (Helpers.contains s "alloca")

let test_verifier_rejects () =
  let p = Prog.create () in
  let b = B.create ~name:"bad" ~params:[] ~ret_ty:Ty.Void in
  B.set_term b (I.Jmp 7);   (* branch to a nonexistent block *)
  Prog.add_func p (B.finish b);
  (match V.program_result p with
   | Ok () -> Alcotest.fail "verifier accepted branch to unknown block"
   | Error _ -> ());
  let p2 = Prog.create () in
  let b2 = B.create ~name:"bad2" ~params:[] ~ret_ty:Ty.Void in
  B.store b2 Ty.Int (I.Reg 99) (I.Imm 0);   (* undefined register *)
  B.set_term b2 (I.Ret None);
  Prog.add_func p2 (B.finish b2);
  (match V.program_result p2 with
   | Ok () -> Alcotest.fail "verifier accepted out-of-range register"
   | Error _ -> ())

let test_verifier_ret_mismatch () =
  let p = Prog.create () in
  let b = B.create ~name:"f" ~params:[] ~ret_ty:Ty.Int in
  B.set_term b (I.Ret None);   (* void return from int function *)
  Prog.add_func p (B.finish b);
  match V.program_result p with
  | Ok () -> Alcotest.fail "verifier accepted ret-void from int function"
  | Error _ -> ()

let test_clone_independent () =
  let p = build_simple () in
  let q = Prog.clone p in
  let fn_q = Prog.find_func q "f" in
  (* mutate the clone's load to an instrumented access *)
  Array.iter
    (fun (i : I.instr) ->
      match i with
      | I.Load l -> l.where <- I.SafeFull
      | _ -> ())
    fn_q.Prog.blocks.(0).Prog.instrs;
  let fn_p = Prog.find_func p "f" in
  Array.iter
    (fun (i : I.instr) ->
      match i with
      | I.Load { where; _ } ->
        Alcotest.(check bool) "original untouched" true (where = I.Regular)
      | _ -> ())
    fn_p.Prog.blocks.(0).Prog.instrs

let test_address_taken () =
  let p = Prog.create () in
  let mk name term_op =
    let b = B.create ~name ~params:[] ~ret_ty:Ty.Void in
    (match term_op with
     | Some o -> ignore (B.intrin b Levee_ir.Instr.I_checksum [ o ])
     | None -> ());
    B.set_term b (I.Ret None);
    Prog.add_func p (B.finish b)
  in
  mk "target" None;
  mk "untaken" None;
  mk "user" (Some (I.Fun "target"));
  let taken = Prog.compute_address_taken p in
  Alcotest.(check bool) "target taken" true (Hashtbl.mem taken "target");
  Alcotest.(check bool) "untaken not" false (Hashtbl.mem taken "untaken");
  Alcotest.(check bool) "flag set" true
    (Prog.find_func p "target").Prog.address_taken

let () =
  Alcotest.run "ir"
    [ ("types",
       [ Alcotest.test_case "sizes" `Quick test_sizes;
         Alcotest.test_case "field offsets" `Quick test_field_offsets;
         Alcotest.test_case "predicates" `Quick test_type_predicates;
         Alcotest.test_case "equality" `Quick test_type_equal ]);
      ("builder",
       [ Alcotest.test_case "simple function" `Quick test_builder;
         Alcotest.test_case "printer" `Quick test_printer ]);
      ("verifier",
       [ Alcotest.test_case "rejects bad programs" `Quick test_verifier_rejects;
         Alcotest.test_case "ret type mismatch" `Quick test_verifier_ret_mismatch ]);
      ("program",
       [ Alcotest.test_case "clone independence" `Quick test_clone_independent;
         Alcotest.test_case "address-taken analysis" `Quick test_address_taken ]) ]
