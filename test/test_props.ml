(* Whole-toolchain property tests: randomly generated MiniC programs must
   behave identically under every protection configuration (the
   compatibility half of the paper's claims), and the machine-level CPI
   semantics must agree with the Appendix A model on what aborts. *)

module P = Levee_core.Pipeline
module M = Levee_machine

(* ---------- random MiniC program generator ----------
   Straight-line-with-loops programs over a fixed set of globals: int
   scalars, an int array (indices masked in-bounds), a char buffer used as
   a string, a function-pointer table dispatching over three handlers, and
   heap nodes with fptr fields. All generated programs are memory-safe by
   construction; the differential property is behavioural equality. *)

let header = {|
int gi0; int gi1; int gi2;
int arr[16];
char cbuf[16];
struct node { int v; int (*cb)(int); struct node *next; };
struct node *head;
int h_inc(int x) { return x + 1; }
int h_dbl(int x) { return x * 2; }
int h_neg(int x) { return -x; }
int (*table[3])(int) = { h_inc, h_dbl, h_neg };
|}

type stmt_kind =
  | SetScalar of int * int            (* gi<i> = k *)
  | AddScalar of int * int            (* gi<i> = gi<j> + gi<i> *)
  | SetArr of int * int               (* arr[i & 15] = expr *)
  | UseArr of int * int
  | Dispatch of int * int             (* gi<i> = table[k](gi<i>) *)
  | SwapTable of int * int            (* table[i] = table[j] reference copy *)
  | PushNode of int                   (* heap node with handler k *)
  | WalkNodes                         (* sum list via cb dispatch *)
  | StrWork of int                    (* strcpy + strlen round trip *)
  | Loop of int * stmt_kind list

let rec render ind k =
  let pad = String.make ind ' ' in
  match k with
  | SetScalar (i, v) -> Printf.sprintf "%sgi%d = %d;" pad (i mod 3) v
  | AddScalar (i, j) ->
    Printf.sprintf "%sgi%d = gi%d + gi%d;" pad (i mod 3) (j mod 3) (i mod 3)
  | SetArr (i, v) ->
    Printf.sprintf "%sarr[%d] = gi%d + %d;" pad (i land 15) (v mod 3) v
  | UseArr (i, j) ->
    Printf.sprintf "%sgi%d = gi%d + arr[%d];" pad (i mod 3) (i mod 3) (j land 15)
  | Dispatch (i, k) ->
    Printf.sprintf "%sgi%d = table[%d](gi%d & 1023);" pad (i mod 3) (k mod 3)
      (i mod 3)
  | SwapTable (i, j) ->
    Printf.sprintf "%stable[%d] = table[%d];" pad (i mod 3) (j mod 3)
  | PushNode k ->
    Printf.sprintf
      "%s{ struct node *n = (struct node*) malloc(sizeof(struct node)); \
       n->v = %d; n->cb = table[%d]; n->next = head; head = n; }"
      pad (k mod 100) (k mod 3)
  | WalkNodes ->
    Printf.sprintf
      "%s{ struct node *w = head; while (w != 0) { gi0 = (gi0 + w->cb(w->v)) & 65535; w = w->next; } }"
      pad
  | StrWork i ->
    Printf.sprintf
      "%sstrcpy(cbuf, \"s%dx\"); gi%d = gi%d + strlen(cbuf);" pad (i mod 10)
      (i mod 3) (i mod 3)
  | Loop (n, body) ->
    let inner = String.concat "\n" (List.map (render (ind + 2)) body) in
    Printf.sprintf "%s{ int it%d; for (it%d = 0; it%d < %d; it%d = it%d + 1) {\n%s\n%s} }"
      pad n n n (2 + (n mod 4)) n n inner pad

let gen_stmt : stmt_kind QCheck.Gen.t =
  let open QCheck.Gen in
  let base =
    frequency
      [ (4, map2 (fun i v -> SetScalar (i, v)) (int_bound 2) (int_bound 500));
        (3, map2 (fun i j -> AddScalar (i, j)) (int_bound 2) (int_bound 2));
        (3, map2 (fun i v -> SetArr (i, v)) (int_bound 15) (int_bound 40));
        (3, map2 (fun i j -> UseArr (i, j)) (int_bound 2) (int_bound 15));
        (3, map2 (fun i k -> Dispatch (i, k)) (int_bound 2) (int_bound 2));
        (2, map2 (fun i j -> SwapTable (i, j)) (int_bound 2) (int_bound 2));
        (2, map (fun k -> PushNode k) (int_bound 99));
        (1, return WalkNodes);
        (2, map (fun i -> StrWork i) (int_bound 9)) ]
  in
  let loop =
    map2 (fun n body -> Loop (n, body)) (int_bound 7)
      (list_size (int_range 1 4) base)
  in
  frequency [ (6, base); (1, loop) ]

let gen_program : string QCheck.Gen.t =
  QCheck.Gen.(
    map
      (fun stmts ->
        let body = String.concat "\n" (List.map (render 2) stmts) in
        header ^ "int main() {\n" ^ body
        ^ "\n  checksum(gi0 + gi1 * 3 + gi2 * 7);\n  print_int(gi0 & 255);\n  return 0;\n}\n")
      (list_size (int_range 3 20) gen_stmt))

let protections =
  [ P.Hardened; P.Cookies; P.Safe_stack; P.Cfi; P.Cps; P.Cpi; P.Cpi_debug;
    P.Softbound; P.Cfi_type; P.Cpi_crypt ]

let prop_differential =
  QCheck.Test.make ~name:"random programs behave identically under all protections"
    ~count:60
    (QCheck.make ~print:(fun s -> s) gen_program)
    (fun src ->
      let prog = Levee_minic.Lower.compile src in
      let run prot =
        let b = P.build prot prog in
        M.Interp.run_program ~fuel:3_000_000 b.P.prog b.P.config
      in
      let base = run P.Vanilla in
      match base.M.Interp.outcome with
      | M.Trap.Exit 0 ->
        List.for_all
          (fun prot ->
            let r = run prot in
            r.M.Interp.outcome = base.M.Interp.outcome
            && r.M.Interp.checksum = base.M.Interp.checksum
            && r.M.Interp.output = base.M.Interp.output)
          protections
      | _ -> false (* generated programs are benign by construction *))

(* The paper claims all three safe-store organisations and both software
   isolation mechanisms are semantics-preserving: cross the protection
   axis with every (store, isolation) combination, not just the defaults. *)
let store_axis =
  [ M.Safestore.Simple_array; M.Safestore.Two_level; M.Safestore.Hashtable ]

let isolation_axis = [ M.Config.Info_hiding; M.Config.Sfi ]

let prop_store_isolation_cross =
  QCheck.Test.make
    ~name:"store organisations x isolation modes preserve semantics"
    ~count:20
    (QCheck.make ~print:(fun s -> s) gen_program)
    (fun src ->
      let prog = Levee_minic.Lower.compile src in
      let run ?store_impl ?isolation prot =
        let b = P.build ?store_impl ?isolation prot prog in
        M.Interp.run_program ~fuel:3_000_000 b.P.prog b.P.config
      in
      let base = run P.Vanilla in
      match base.M.Interp.outcome with
      | M.Trap.Exit 0 ->
        List.for_all
          (fun prot ->
            List.for_all
              (fun store_impl ->
                List.for_all
                  (fun isolation ->
                    let r = run ~store_impl ~isolation prot in
                    r.M.Interp.outcome = base.M.Interp.outcome
                    && r.M.Interp.checksum = base.M.Interp.checksum
                    && r.M.Interp.output = base.M.Interp.output)
                  isolation_axis)
              store_axis)
          [ P.Safe_stack; P.Cps; P.Cpi; P.Softbound ]
      | _ -> false (* generated programs are benign by construction *))

let prop_overhead_ordering =
  (* cycle counts: vanilla <= cps-ish <= softbound on dispatch-heavy
     programs; we assert only the coarse, always-true ordering:
     vanilla <= each protection, softbound the costliest of the group *)
  QCheck.Test.make ~name:"cost ordering: instrumented runs never undercut softbound"
    ~count:25
    (QCheck.make ~print:(fun s -> s) gen_program)
    (fun src ->
      let prog = Levee_minic.Lower.compile src in
      let cycles prot =
        let b = P.build prot prog in
        (M.Interp.run_program ~fuel:3_000_000 b.P.prog b.P.config).M.Interp.cycles
      in
      let sb = cycles P.Softbound in
      cycles P.Cps <= sb && cycles P.Cpi <= sb)

let prop_elision_invisible =
  (* redundant-check elision is a justified optimisation: on benign
     programs it may only remove cycles, never change behaviour *)
  QCheck.Test.make ~name:"check elision never changes observable behaviour"
    ~count:40
    (QCheck.make ~print:(fun s -> s) gen_program)
    (fun src ->
      let prog = Levee_minic.Lower.compile src in
      let run elide =
        let b = P.build ~elide P.Cpi prog in
        M.Interp.run_program ~fuel:3_000_000 b.P.prog b.P.config
      in
      let on = run true and off = run false in
      on.M.Interp.outcome = off.M.Interp.outcome
      && on.M.Interp.checksum = off.M.Interp.checksum
      && on.M.Interp.output = off.M.Interp.output
      && on.M.Interp.cycles <= off.M.Interp.cycles)

(* ---------- scheduler seed sweep ----------
   The deterministic scheduler's contract: a multithreaded run is a pure
   function of (program, input, config, sched_seed). For race-free
   programs — every shared access lock-dominated — the seed may reorder
   interleavings (so cycle/ctx-switch counts move) but must never change
   observable behaviour: same checksum, same output, zero races. And the
   same seed must reproduce the run byte-for-byte, counters included. *)

let conc_src ~iters =
  Printf.sprintf
    {|
int lk;
int acc;
int worker(int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    mutex_lock(&lk);
    acc = acc + 1;
    mutex_unlock(&lk);
  }
  return n;
}
int main() {
  int t1; int t2; int r;
  t1 = thread_spawn(worker, %d);
  t2 = thread_spawn(worker, %d);
  r = thread_join(t1) + thread_join(t2);
  checksum(acc * 3 + r);
  print_int(acc);
  return 0;
}
|}
    iters (iters + 3)

let prop_sched_seed_sweep =
  QCheck.Test.make
    ~name:"sched seeds: same seed byte-identical, any seed same behaviour"
    ~count:30
    QCheck.(triple (int_bound 1000) (int_bound 1000) (int_range 1 24))
    (fun (seed_a, seed_b, iters) ->
      let prog = Levee_minic.Lower.compile (conc_src ~iters) in
      let run prot sched_seed =
        let b = P.build prot prog in
        M.Interp.run_program ~fuel:2_000_000 ~sched_seed b.P.prog b.P.config
      in
      List.for_all
        (fun prot ->
          let a = run prot seed_a in
          let a' = run prot seed_a in
          let b = run prot seed_b in
          (* replay: identical down to every counter *)
          a = a'
          (* benign, race-free under any seed *)
          && a.M.Interp.outcome = M.Trap.Exit 0
          && a.M.Interp.races = 0 && b.M.Interp.races = 0
          && a.M.Interp.threads = 3
          (* seed-independent observable behaviour *)
          && b.M.Interp.outcome = a.M.Interp.outcome
          && b.M.Interp.checksum = a.M.Interp.checksum
          && b.M.Interp.output = a.M.Interp.output)
        [ P.Vanilla; P.Safe_stack; P.Cpi ])

(* ---------- the protection spectrum on RIPE ----------
   Burow et al.'s precision ordering, checked as literal set inclusion
   over the hijacked (victim, payload) instances: every attack that gets
   past a more precise member also gets past every coarser one.
   vanilla ⊇ cfi ⊇ cfi-type ⊇ cpi = cpi-crypt = ∅. *)

module R = Levee_attacks.Ripe
module Atk = Levee_attacks.Attack
module V = Levee_attacks.Victims

let spectrum = [ P.Vanilla; P.Cfi; P.Cfi_type; P.Cpi; P.Cpi_crypt ]

let hijack_set summaries prot =
  match
    List.find_opt (fun (s : R.summary) -> s.R.protection = prot) summaries
  with
  | None -> Alcotest.fail ("missing RIPE summary for " ^ P.protection_name prot)
  | Some s ->
    List.sort_uniq compare
      (List.filter_map
         (fun (r : R.run) ->
           if R.succeeded r then
             Some
               ( r.R.instance.R.victim.V.vid,
                 Atk.payload_name r.R.instance.R.payload )
           else None)
         s.R.runs)

let subset a b = List.for_all (fun x -> List.mem x b) a

let test_ripe_spectrum_ordering () =
  let summaries = R.run_matrix ~protections:spectrum () in
  let v = hijack_set summaries P.Vanilla in
  let cfi = hijack_set summaries P.Cfi in
  let cfi_t = hijack_set summaries P.Cfi_type in
  let cpi = hijack_set summaries P.Cpi in
  let crypt = hijack_set summaries P.Cpi_crypt in
  Alcotest.(check bool) "vanilla hijacked somewhere" true (v <> []);
  Alcotest.(check bool) "cfi subset of vanilla" true (subset cfi v);
  Alcotest.(check bool) "cfi-type subset of cfi" true (subset cfi_t cfi);
  Alcotest.(check bool) "cfi strictly coarser than cfi-type" true
    (List.length cfi_t < List.length cfi);
  Alcotest.(check bool) "cpi subset of cfi-type" true (subset cpi cfi_t);
  Alcotest.(check bool) "cpi-crypt subset of cfi-type" true
    (subset crypt cfi_t);
  Alcotest.(check (list (pair string string))) "cpi hijack-free" [] cpi;
  Alcotest.(check (list (pair string string))) "cpi-crypt hijack-free" []
    crypt

(* ---------- mem_ops_demoted: pin the firing subject ----------
   BENCH_perf.json reports mem_ops_demoted = 0 over the table1 matrix,
   which looks like a dead metric. It is not: the refinement only demotes
   sensitivity-typed accesses it can prove data-only (the void*-handle
   pattern), and the synthetic SPEC workloads never traffic code-typed
   or void* data through demotable cells — every universal-pointer
   access in them actually reaches code. Pin both facts so a refinement
   regression (demotion stops firing) and a workload change (table1
   starts demoting) are each visible. *)

let opaque_handle_src =
  {|void *cache0; void *cache1;
    int lookup(void *h) {
      if (cache0 == h) { return 1; }
      return 0;
    }
    int main() {
      void *a = malloc(4);
      void *b = malloc(4);
      cache0 = a;
      cache1 = b;
      int r = lookup(a) + lookup(b);
      free(a);
      free(b);
      print_int(r);
      return 0;
    }|}

let test_demotion_fires_on_handles () =
  let prog = Levee_minic.Lower.compile opaque_handle_src in
  let cpi = P.build P.Cpi prog in
  let crypt = P.build P.Cpi_crypt prog in
  Alcotest.(check bool) "cpi demotes the opaque handles" true
    (cpi.P.stats.Levee_core.Stats.mem_ops_demoted > 0);
  Alcotest.(check bool) "cpi-crypt demotes the same accesses" true
    (crypt.P.stats.Levee_core.Stats.mem_ops_demoted > 0)

let test_table1_demotes_nothing () =
  let module W = Levee_workloads in
  let total =
    List.fold_left
      (fun acc w ->
        let b = P.build P.Cpi (W.Workload.compile w) in
        acc + b.P.stats.Levee_core.Stats.mem_ops_demoted)
      0 W.Spec.all
  in
  Alcotest.(check int) "table1 workloads have no demotable accesses" 0 total

let () =
  Alcotest.run "props"
    [ ("differential",
       [ QCheck_alcotest.to_alcotest prop_differential;
         QCheck_alcotest.to_alcotest prop_store_isolation_cross;
         QCheck_alcotest.to_alcotest prop_overhead_ordering;
         QCheck_alcotest.to_alcotest prop_elision_invisible ]);
      ("spectrum",
       [ Alcotest.test_case "ripe hijack-set ordering" `Quick
           test_ripe_spectrum_ordering;
         Alcotest.test_case "demotion fires on opaque handles" `Quick
           test_demotion_fires_on_handles;
         Alcotest.test_case "table1 demotes nothing (documented)" `Quick
           test_table1_demotes_nothing ]);
      ("scheduler",
       [ QCheck_alcotest.to_alcotest prop_sched_seed_sweep ]) ]
