(* Shared helpers for the test suites. *)

module P = Levee_core.Pipeline
module M = Levee_machine

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(** Compile MiniC source. *)
let compile ?(name = "<test>") src = Levee_minic.Lower.compile ~name src

(** Compile and run under a protection; returns the interpreter result. *)
let run ?(protection = P.Vanilla) ?(input = [||]) ?(fuel = 5_000_000) src =
  let prog = compile src in
  let built = P.build protection prog in
  M.Interp.run_program ~input ~fuel built.P.prog built.P.config

(** Exit code of a run; fails the test on any other outcome. *)
let exit_code (r : M.Interp.result) =
  match r.M.Interp.outcome with
  | M.Trap.Exit n -> n
  | o -> Alcotest.failf "expected exit, got %s" (M.Trap.outcome_to_string o)

(** Run and return printed output under vanilla. *)
let output ?protection ?input ?fuel src =
  let r = run ?protection ?input ?fuel src in
  ignore (exit_code r);
  r.M.Interp.output

let check_exit ?protection ?input ?fuel ~code src =
  let r = run ?protection ?input ?fuel src in
  Alcotest.(check int) "exit code" code (exit_code r)

let outcome_of ?protection ?input ?fuel src =
  (run ?protection ?input ?fuel src).M.Interp.outcome

let outcome_testable =
  Alcotest.testable
    (fun fmt o -> Format.pp_print_string fmt (M.Trap.outcome_to_string o))
    ( = )

let exn_testable =
  Alcotest.testable
    (fun fmt e -> Format.pp_print_string fmt (Printexc.to_string e))
    ( = )
