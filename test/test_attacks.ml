(* Security evaluation tests: the RIPE-style matrix must reproduce the
   paper's Section 5.1 claims exactly. These are the repository's core
   security theorems, checked on every run. *)

module P = Levee_core.Pipeline
module R = Levee_attacks.Ripe
module A = Levee_attacks.Attack
module V = Levee_attacks.Victims
module M = Levee_machine

let t name f = Alcotest.test_case name `Quick f

(* Run the full matrix once and share it across tests. *)
let matrix = lazy (R.run_matrix ~include_beyond_ripe:true ())

let summary prot =
  List.find (fun (s : R.summary) -> s.R.protection = prot) (Lazy.force matrix)

let test_benign_runs () =
  (* every victim must behave benignly without attack input, under every
     protection: protections must not break correct programs *)
  List.iter
    (fun (v : V.victim) ->
      let prog = Levee_minic.Lower.compile v.V.source in
      List.iter
        (fun prot ->
          let built = P.build prot prog in
          Alcotest.(check bool)
            (v.V.vid ^ " benign under " ^ P.protection_name prot)
            true (R.benign_ok built))
        [ P.Vanilla; P.Hardened; P.Cookies; P.Safe_stack; P.Cfi; P.Cps;
          P.Cpi; P.Softbound ])
    V.all

let test_vanilla_all_hijacked () =
  (* RIPE on an unprotected system: essentially every exploit succeeds *)
  let s = summary P.Vanilla in
  Alcotest.(check int) "all attacks succeed" s.R.total s.R.hijacked

let test_cpi_prevents_all () =
  (* the paper's central claim: CPI renders every control-flow hijack
     impossible — including the beyond-RIPE vtable interchange *)
  let s = summary P.Cpi in
  Alcotest.(check int) "no hijacks under CPI" 0 s.R.hijacked

let test_cps_prevents_ripe () =
  (* CPS stops every RIPE attack; it permits only the valid-code-pointer
     interchange that Section 3.3 explicitly trades away *)
  let s = summary P.Cps in
  List.iter
    (fun (r : R.run) ->
      if R.succeeded r then
        Alcotest.(check bool)
          ("only beyond-RIPE attacks may pass CPS: "
           ^ r.R.instance.R.victim.V.vid)
          true r.R.instance.R.victim.V.beyond_ripe)
    s.R.runs;
  (* and the vtable-swap demo really does bypass CPS but not CPI *)
  Alcotest.(check bool) "vtable swap bypasses CPS" true (s.R.hijacked > 0)

let test_safestack_stops_stack_attacks () =
  (* Section 5.1: "when using only the safe stack, it prevents all
     stack-based attacks" — heap/global attacks remain *)
  let s = summary P.Safe_stack in
  Alcotest.(check int) "no stack-based hijacks" 0 s.R.stack_hijacked;
  Alcotest.(check bool) "non-stack attacks still succeed" true (s.R.hijacked > 0)

let test_hardened_partial () =
  (* DEP+ASLR+cookies stop many but not all (the paper's Ubuntu 13.10
     observation: 43-49 of 850 still succeed) *)
  let s = summary P.Hardened in
  Alcotest.(check bool) "some attacks stopped" true (s.R.hijacked < s.R.total);
  Alcotest.(check bool) "some attacks still succeed" true (s.R.hijacked > 0)

let test_cookies_contiguous_only () =
  (* cookies beat contiguous stack smashes but not indirect or heap ones *)
  let s = summary P.Cookies in
  let direct_ret_stopped =
    List.for_all
      (fun (r : R.run) ->
        not
          (R.succeeded r
           && r.R.instance.R.victim.V.vid = "stack-direct-ret"
           && r.R.instance.R.payload <> A.To_function_leak))
      s.R.runs
  in
  Alcotest.(check bool) "contiguous ret smash stopped" true direct_ret_stopped;
  Alcotest.(check bool) "other attacks pass" true (s.R.hijacked > 0)

let test_cfi_bypassed () =
  (* coarse-grained CFI is defeated by function-entry redirects and
     call-site gadgets (the Gokta's/Davi attacks), but stops mid-function
     gadget jumps *)
  let s = summary P.Cfi in
  let fn_entry_passes =
    List.exists
      (fun (r : R.run) ->
        R.succeeded r && r.R.instance.R.payload = A.To_function)
      s.R.runs
  in
  let rop_gadget_stopped =
    List.for_all
      (fun (r : R.run) ->
        not (R.succeeded r
             && r.R.instance.R.payload = A.To_gadget
             && A.is_stack_attack r.R.instance.R.victim.V.target))
      s.R.runs
  in
  let callsite_bypass =
    List.exists
      (fun (r : R.run) ->
        R.succeeded r && r.R.instance.R.payload = A.To_callsite)
      s.R.runs
  in
  Alcotest.(check bool) "function-entry redirect passes CFI" true fn_entry_passes;
  Alcotest.(check bool) "stack rop gadget stopped by CFI" true rop_gadget_stopped;
  Alcotest.(check bool) "call-site gadget bypasses coarse CFI" true callsite_bypass

let test_softbound_traps_all () =
  let s = summary P.Softbound in
  Alcotest.(check int) "no hijacks" 0 s.R.hijacked;
  Alcotest.(check int) "all trapped at the corruption" s.R.total s.R.trapped_count

let test_aslr_leak () =
  (* ASLR stops absolute-address payloads, but an information leak
     reinstates them (the paper's leak-proof-hiding motivation) *)
  let s = summary P.Hardened in
  let leak_beats_aslr =
    List.exists
      (fun (r : R.run) ->
        R.succeeded r && r.R.instance.R.payload = A.To_function_leak)
      s.R.runs
  in
  Alcotest.(check bool) "leak-equipped attack beats ASLR" true leak_beats_aslr

let test_shellcode_needs_dep_off () =
  (* shellcode payloads succeed on the DEP-less vanilla config only *)
  let ok_vanilla =
    List.exists
      (fun (r : R.run) -> R.succeeded r && r.R.instance.R.payload = A.Shellcode)
      (summary P.Vanilla).R.runs
  in
  let none_hardened =
    List.for_all
      (fun (r : R.run) ->
        not (R.succeeded r && r.R.instance.R.payload = A.Shellcode))
      (summary P.Hardened).R.runs
  in
  Alcotest.(check bool) "shellcode works without DEP" true ok_vanilla;
  Alcotest.(check bool) "DEP stops shellcode" true none_hardened

let test_cpi_silent_prevention () =
  (* Section 3.2.2: in the default mode, hijack attempts via non-protected
     pointer errors are silently prevented (no trap, benign behaviour).
     The exception is corruption routed through the safe-store-aware
     memcpy variants: there the metadata invalidation is detected at the
     next protected load, which is an abort, not a hijack. *)
  let s = summary P.Cpi in
  List.iter
    (fun (r : R.run) ->
      if R.trapped r then
        Alcotest.(check bool)
          ("only cpi_memcpy / temporal corruption traps: "
           ^ r.R.instance.R.victim.V.vid)
          true
          (Helpers.contains r.R.instance.R.victim.V.vid "memcpy"
           || Helpers.contains r.R.instance.R.victim.V.vid "uaf"))
    s.R.runs

let test_elision_attack_outcomes_identical () =
  (* the elision and refinement machinery must not weaken the defense:
     every RIPE cell under CPI (and CPS) has the same outcome whether or
     not the static optimisations ran *)
  let victims = R.compile_victims () in
  let insts = R.instances ~include_beyond_ripe:true () in
  List.iter
    (fun prot ->
      List.iter
        (fun ((v : V.victim), prog, reference) ->
          let mine =
            List.filter (fun i -> i.R.victim.V.vid = v.V.vid) insts
          in
          let on = P.build ~refine:true ~elide:true prot prog in
          let off = P.build ~refine:false ~elide:false prot prog in
          Alcotest.(check bool)
            (v.V.vid ^ " benign agrees")
            (R.benign_ok off) (R.benign_ok on);
          List.iter
            (fun inst ->
              let ron = R.run_instance ~reference on inst in
              let roff = R.run_instance ~reference off inst in
              Alcotest.(check bool)
                (Printf.sprintf "%s under %s: optimised = unoptimised"
                   v.V.vid (P.protection_name prot))
                true
                (ron.R.outcome = roff.R.outcome))
            mine)
        victims)
    [ P.Cpi; P.Cps ]

let test_matrix_coverage () =
  (* the matrix must cover all four RIPE dimensions *)
  let insts = R.instances ~include_beyond_ripe:true () in
  Alcotest.(check bool) "enough instances" true (List.length insts >= 40);
  let techniques =
    List.sort_uniq compare
      (List.map (fun i -> i.R.victim.V.technique) insts)
  in
  let locations =
    List.sort_uniq compare (List.map (fun i -> i.R.victim.V.location) insts)
  in
  Alcotest.(check int) "all three techniques" 3 (List.length techniques);
  Alcotest.(check int) "all three locations" 3 (List.length locations)

let () =
  Alcotest.run "attacks"
    [ ("sanity",
       [ t "victims are benign without attacks" test_benign_runs;
         t "matrix coverage" test_matrix_coverage ]);
      ("paper claims",
       [ t "vanilla: all hijacked" test_vanilla_all_hijacked;
         t "CPI prevents everything" test_cpi_prevents_all;
         t "CPI prevents silently" test_cpi_silent_prevention;
         t "CPS prevents all RIPE attacks" test_cps_prevents_ripe;
         t "safe stack stops stack attacks" test_safestack_stops_stack_attacks;
         t "DEP+ASLR+cookies partial" test_hardened_partial;
         t "cookies: contiguous only" test_cookies_contiguous_only;
         t "coarse CFI bypassed" test_cfi_bypassed;
         t "softbound traps all" test_softbound_traps_all;
         t "info leak defeats ASLR" test_aslr_leak;
         t "shellcode vs DEP" test_shellcode_needs_dep_off;
         t "elision preserves every verdict" test_elision_attack_outcomes_identical ]) ]
