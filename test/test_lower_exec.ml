(* End-to-end language-feature tests: compile MiniC and execute under the
   vanilla machine, checking results. Every construct of the language gets
   a behavioural test here. *)

open Helpers

let t name f = Alcotest.test_case name `Quick f

let test_arith () =
  check_exit ~code:7 "int main() { return 1 + 2 * 3; }";
  check_exit ~code:1 "int main() { return 10 % 3; }";
  check_exit ~code:5 "int main() { return -(-5); }";
  check_exit ~code:12 "int main() { return 3 << 2; }";
  check_exit ~code:3 "int main() { return 13 >> 2; }";
  check_exit ~code:8 "int main() { return 12 & 10; }";
  check_exit ~code:14 "int main() { return 12 | 10; }";
  check_exit ~code:6 "int main() { return 12 ^ 10; }";
  check_exit ~code:(-2) "int main() { return ~1; }"

let test_comparisons () =
  check_exit ~code:1 "int main() { return 3 < 4; }";
  check_exit ~code:0 "int main() { return 4 < 3; }";
  check_exit ~code:1 "int main() { return 4 >= 4 && 4 <= 4 && 4 == 4 && 3 != 4; }";
  check_exit ~code:0 "int main() { return !1; }";
  check_exit ~code:1 "int main() { return !0; }"

let test_shortcircuit () =
  (* the right operand must not run when short-circuited *)
  check_exit ~code:5
    {|int g = 5;
      int boom() { g = 99; return 1; }
      int main() {
        int x = 0 && boom();
        int y = 1 || boom();
        return g + x + y - 1;
      }|}

let test_ternary () =
  check_exit ~code:10 "int main() { int x = 3; return x > 0 ? 10 : 20; }";
  check_exit ~code:20 "int main() { int x = -3; return x > 0 ? 10 : 20; }"

let test_control_flow () =
  check_exit ~code:45
    {|int main() { int i; int s = 0;
       for (i = 0; i < 10; i = i + 1) { s = s + i; } return s; }|};
  check_exit ~code:10
    {|int main() { int s = 0; int i = 0;
       while (1) { i = i + 1; if (i > 4) { break; } s = s + i; } return s; }|};
  check_exit ~code:12
    {|int main() { int s = 0; int i;
       for (i = 0; i < 10; i = i + 1) { if (i % 2 == 1) { continue; } s = s + i; }
       return s - 8; }|};
  check_exit ~code:3
    {|int main() { int n = 0; do { n = n + 1; } while (n < 3); return n; }|}

let test_functions () =
  check_exit ~code:120
    {|int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
      int main() { return fact(5); }|};
  check_exit ~code:13
    {|int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
      int main() { return fib(7); }|};
  check_exit ~code:42
    {|void set(int *p, int v) { *p = v; }
      int main() { int x = 0; set(&x, 42); return x; }|}

let test_arrays () =
  check_exit ~code:30
    {|int main() { int a[5]; int i; int s = 0;
       for (i = 0; i < 5; i = i + 1) { a[i] = i * 3; }
       for (i = 0; i < 5; i = i + 1) { s = s + a[i]; }
       return s; }|};
  check_exit ~code:9
    {|int main() { int m[3][3]; m[1][2] = 9; return m[1][2]; }|};
  check_exit ~code:7
    {|int g[4] = {1, 2, 4, 0};
      int main() { return g[0] + g[1] + g[2] + g[3]; }|};
  check_exit ~code:5
    {|int main() { int a[4]; int *p = a + 1; p[0] = 5; return a[1]; }|}

let test_pointers () =
  check_exit ~code:11
    {|int main() { int x = 11; int *p = &x; int **pp = &p; return **pp; }|};
  check_exit ~code:3
    {|int main() { int a[8]; int *p = a; int *q = a + 3; return q - p; }|};
  check_exit ~code:1
    {|int main() { int x; int *p = &x; return p == &x; }|}

let test_structs () =
  check_exit ~code:15
    {|struct point { int x; int y; };
      int main() { struct point p; p.x = 5; p.y = 10; return p.x + p.y; }|};
  check_exit ~code:21
    {|struct node { int v; struct node *next; };
      int main() {
        struct node a; struct node b; struct node c;
        a.v = 1; b.v = 2; c.v = 18;
        a.next = &b; b.next = &c; c.next = 0;
        struct node *p = &a;
        int s = 0;
        while (p != 0) { s = s + p->v; p = p->next; }
        return s;
      }|};
  check_exit ~code:99
    {|struct inner { int val; };
      struct outer { int pad; struct inner in; };
      int main() { struct outer o; o.in.val = 99; return o.in.val; }|}

let test_heap () =
  check_exit ~code:10
    {|int main() {
        int *p = (int*) malloc(4);
        p[0] = 1; p[1] = 2; p[2] = 3; p[3] = 4;
        int s = p[0] + p[1] + p[2] + p[3];
        free(p);
        return s;
      }|};
  check_exit ~code:55
    {|struct cell { int v; struct cell *next; };
      int main() {
        struct cell *head = 0;
        int i; int s = 0;
        for (i = 1; i <= 10; i = i + 1) {
          struct cell *c = (struct cell*) malloc(sizeof(struct cell));
          c->v = i; c->next = head; head = c;
        }
        while (head != 0) { s = s + head->v; head = head->next; }
        return s;
      }|}

let test_function_pointers () =
  check_exit ~code:9
    {|int add(int a, int b) { return a + b; }
      int mul(int a, int b) { return a * b; }
      int main() {
        int (*f)(int, int) = add;
        int x = f(1, 2);
        f = mul;
        return x + f(2, 3);
      }|};
  check_exit ~code:6
    {|int inc(int x) { return x + 1; }
      int dbl(int x) { return x * 2; }
      int (*table[2])(int) = { inc, dbl };
      int main() { return table[0](1) + table[1](2); }|};
  check_exit ~code:4
    {|int three() { return 3; }
      int main() { int (*f)() = &three; return (*f)() + 1; }|}

let test_strings () =
  check_exit ~code:5 {|int main() { return strlen("hello"); }|};
  check_exit ~code:0 {|int main() { return strcmp("abc", "abc"); }|};
  check_exit ~code:1 {|int main() { return strcmp("abd", "abc") > 0; }|};
  check_exit ~code:3
    {|int main() { char buf[8]; strcpy(buf, "xyz"); return strlen(buf); }|};
  Alcotest.(check string) "print_str" "hi\n" (output {|int main() { print_str("hi"); return 0; }|})

let test_memops () =
  check_exit ~code:21
    {|int main() {
        int a[4]; int b[4];
        a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 15;
        memcpy(b, a, 4);
        memset(a, 0, 4);
        return b[0] + b[1] + b[2] + b[3] + a[0];
      }|}

let test_io_and_checksum () =
  let r = run ~input:[| 3; 4 |] {|int main() { return read_int() + read_int(); }|} in
  Alcotest.(check int) "read_int" 7 (exit_code r);
  let r =
    run ~input:[| 1; 2; 3; 10; 9 |]
      {|int main() {
          char buf[8];
          int n = gets(buf);
          return n * 100 + read_int();
        }|}
  in
  Alcotest.(check int) "gets stops at newline" 309 (exit_code r);
  let r = run {|int main() { checksum(123); checksum(456); return 0; }|} in
  Alcotest.(check bool) "checksum accumulates" true (r.Levee_machine.Interp.checksum <> 0)

let test_setjmp () =
  check_exit ~code:42
    {|int jb[4];
      void deep(int n) { if (n == 0) { longjmp(jb, 42); } deep(n - 1); }
      int main() {
        int r = setjmp(jb);
        if (r != 0) { return r; }
        deep(5);
        return 1;
      }|};
  (* setjmp returns 0 the first time; longjmp(_, 0) resumes with 1 *)
  check_exit ~code:1
    {|int jb[4];
      int main() {
        int r = setjmp(jb);
        if (r != 0) { return r; }
        longjmp(jb, 0);
        return 99;
      }|}

let test_sizeof () =
  check_exit ~code:1 "int main() { return sizeof(int); }";
  check_exit ~code:1 "int main() { return sizeof(void*); }";
  check_exit ~code:3
    {|struct s { int a; int b; int c; };
      int main() { return sizeof(struct s); }|}

let test_globals_init () =
  check_exit ~code:30
    {|int a = 10;
      int b[2] = {5, 15};
      int main() { return a + b[0] + b[1]; }|};
  check_exit ~code:104
    {|char msg[8] = "hi";
      int main() { return msg[0]; }|};
  check_exit ~code:77
    {|int f77() { return 77; }
      int (*g)() = f77;
      int main() { return g(); }|};
  check_exit ~code:5
    {|struct p { int x; int y; };
      struct p pt = {2, 3};
      int main() { return pt.x + pt.y; }|}

let test_char_semantics () =
  check_exit ~code:97 "int main() { char c = 'a'; return c; }";
  check_exit ~code:2
    {|int main() { char *s = "abc"; char *t = s + 1; return t - s + 1; }|}

let test_nested_structs_arrays () =
  check_exit ~code:42
    {|struct inner { int a[3]; int b; };
      struct outer { struct inner rows[2]; int tag; };
      int main() {
        struct outer o;
        o.rows[0].a[2] = 20;
        o.rows[1].a[0] = 21;
        o.rows[1].b = 1;
        o.tag = 0;
        return o.rows[0].a[2] + o.rows[1].a[0] + o.rows[1].b;
      }|};
  check_exit ~code:6
    {|struct p { int x; int y; };
      struct p grid[2][2];
      int main() {
        grid[0][0].x = 1; grid[0][1].y = 2; grid[1][1].x = 3;
        return grid[0][0].x + grid[0][1].y + grid[1][1].x;
      }|}

let test_callbacks_as_params () =
  check_exit ~code:12
    {|int twice(int (*f)(int), int x) { return f(f(x)); }
      int add3(int x) { return x + 3; }
      int main() { return twice(add3, 6); }|};
  check_exit ~code:30
    {|int apply_all(int (*fs[3])(int), int x) {
        int i; int s = 0;
        for (i = 0; i < 3; i = i + 1) { s = s + fs[i](x); }
        return s;
      }
      int id(int x) { return x; }
      int dbl(int x) { return x * 2; }
      int trpl(int x) { return x * 3; }
      int main() {
        int (*table[3])(int);
        table[0] = id; table[1] = dbl; table[2] = trpl;
        return apply_all(table, 5);
      }|}

let test_pointer_arith_edge () =
  check_exit ~code:1
    {|struct s { int a; int b; };
      int main() {
        struct s arr[4];
        struct s *p = arr;
        struct s *q = p + 3;
        return q - p == 3;
      }|};
  check_exit ~code:9
    {|int main() {
        int a[4];
        int *end = a + 4;
        int *p = a;
        int s = 0;
        while (p != end) { *p = 2; s = s + *p; p = p + 1; }
        return s + 1;
      }|}

let test_void_ptr_roundtrip () =
  check_exit ~code:5
    {|int main() {
        int x = 5;
        void *v = (void*) &x;
        int *p = (int*) v;
        return *p;
      }|};
  check_exit ~code:7
    {|int pick(void *a, void *b, int which) {
        if (which) { return *((int*) a); }
        return *((int*) b);
      }
      int main() { int x = 7; int y = 9; return pick(&x, &y, 1); }|}

let test_string_escapes () =
  Alcotest.(check string) "escapes" "a	b
"
    (output {|int main() { print_str("a	b"); return 0; }|});
  check_exit ~code:0 {|int main() { char *s = " abc"; return s[0]; }|}

let test_recursion_mutual () =
  check_exit ~code:1
    {|int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }
      int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }
      int main() { return is_even(10); }|}

let test_exit_and_abort () =
  check_exit ~code:3 "int main() { exit(3); return 0; }";
  match outcome_of "int main() { abort(); return 0; }" with
  | Levee_machine.Trap.Crash _ -> ()
  | o -> Alcotest.failf "abort: %s" (Levee_machine.Trap.outcome_to_string o)

let () =
  Alcotest.run "lower-exec"
    [ ("expressions",
       [ t "arithmetic" test_arith;
         t "comparisons" test_comparisons;
         t "short-circuit" test_shortcircuit;
         t "ternary" test_ternary;
         t "sizeof" test_sizeof;
         t "char" test_char_semantics ]);
      ("statements",
       [ t "control flow" test_control_flow;
         t "functions" test_functions ]);
      ("memory",
       [ t "arrays" test_arrays;
         t "pointers" test_pointers;
         t "structs" test_structs;
         t "heap" test_heap;
         t "memcpy/memset" test_memops;
         t "globals init" test_globals_init ]);
      ("pointers-to-code",
       [ t "function pointers" test_function_pointers ]);
      ("more-coverage",
       [ t "nested structs/arrays" test_nested_structs_arrays;
         t "callbacks as parameters" test_callbacks_as_params;
         t "pointer arithmetic edges" test_pointer_arith_edge;
         t "void* round trips" test_void_ptr_roundtrip;
         t "string escapes" test_string_escapes;
         t "mutual recursion" test_recursion_mutual ]);
      ("runtime",
       [ t "strings" test_strings;
         t "io and checksum" test_io_and_checksum;
         t "setjmp/longjmp" test_setjmp;
         t "exit/abort" test_exit_and_abort ]) ]
