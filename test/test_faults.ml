(* Tests for the fault-injection campaign layer: plan resolution is
   deterministic, the levee-faults/1 report is byte-identical across runs
   and across --jobs, the paper's invariants hold on the smoke campaign,
   and the engine quarantines workloads that keep failing in the harness. *)

module P = Levee_core.Pipeline
module M = Levee_machine
module A = Levee_attacks
module W = Levee_workloads
module Faults = Levee_harness.Faults
module Engine = Levee_harness.Engine

(* The smoke campaign is the shared fixture; run it once per jobs
   setting and memoize (the cost model is deterministic, so reuse is
   sound). *)
let smoke = lazy (Faults.smoke ())
let report1 = lazy (Faults.run ~jobs:1 (Lazy.force smoke))
let report4 = lazy (Faults.run ~jobs:4 (Lazy.force smoke))

let test_covers_all_stores () =
  let c = Lazy.force smoke in
  List.iter
    (fun impl ->
      Alcotest.(check bool)
        (Printf.sprintf "campaign sweeps %s" (M.Safestore.impl_name impl))
        true
        (List.exists (fun (_, s) -> s = impl) c.Faults.configs))
    [ M.Safestore.Simple_array; M.Safestore.Two_level; M.Safestore.Hashtable ]

let test_report_deterministic () =
  (* Double run at jobs=1: byte-identical JSON. *)
  let j1 = Faults.to_json (Lazy.force report1) in
  let j1' = Faults.to_json (Faults.run ~jobs:1 (Lazy.force smoke)) in
  Alcotest.(check string) "double run byte-identical" j1 j1';
  (* jobs=1 vs jobs=4: byte-identical JSON (no wall/jobs fields). *)
  let j4 = Faults.to_json (Lazy.force report4) in
  Alcotest.(check string) "jobs=1 equals jobs=4" j1 j4

let test_invariants () =
  let rep = Lazy.force report1 in
  let rs = Faults.runs rep in
  let hijacked prot =
    List.length
      (List.filter
         (fun r ->
           r.Faults.r_protection = prot && r.Faults.r_class = "hijacked")
         rs)
  in
  Alcotest.(check int) "cpi never hijacked" 0 (hijacked P.Cpi);
  Alcotest.(check bool) "vanilla hijacked by same plans" true
    (hijacked P.Vanilla >= 1);
  List.iter
    (fun (name, ok) -> Alcotest.(check bool) name true ok)
    (Faults.invariants rep);
  Alcotest.(check bool) "invariants_ok" true (Faults.invariants_ok rep)

(* The protection spectrum, asserted as ordered hijack counts plus the
   metadata-drop separation (encryption survives what the safe region
   does not — there is no table to drop). *)
let test_spectrum_ordering () =
  let rep = Lazy.force report1 in
  let rs = Faults.runs rep in
  let hijacked prot =
    List.length
      (List.filter
         (fun r ->
           r.Faults.r_protection = prot && r.Faults.r_class = "hijacked")
         rs)
  in
  Alcotest.(check bool) "coarse cfi hijacked at least once" true
    (hijacked P.Cfi >= 1);
  Alcotest.(check bool) "cfi-type strictly tighter than coarse cfi" true
    (hijacked P.Cfi_type < hijacked P.Cfi);
  Alcotest.(check bool) "cfi-type still pierced by the same-sig swap" true
    (hijacked P.Cfi_type >= 1);
  Alcotest.(check int) "cpi-crypt never hijacked" 0 (hijacked P.Cpi_crypt);
  Alcotest.(check bool) "vanilla the coarsest of all" true
    (hijacked P.Vanilla >= hijacked P.Cfi)

let test_metadata_drop_separation () =
  let rep = Lazy.force report1 in
  let rs = Faults.runs rep in
  let cls prot plan =
    List.filter_map
      (fun r ->
        if r.Faults.r_protection = prot && r.Faults.r_plan = plan then
          Some r.Faults.r_class
        else None)
      rs
  in
  List.iter
    (fun plan ->
      Alcotest.(check bool)
        (plan ^ " masked under cpi-crypt (no safe store to corrupt)")
        true
        (cls P.Cpi_crypt plan <> []
        && List.for_all (fun c -> c = "masked") (cls P.Cpi_crypt plan)))
    [ "gfp-desync"; "gfp-dropmeta" ];
  Alcotest.(check bool) "cpi visibly depends on its metadata" true
    (List.exists
       (fun c -> c <> "masked")
       (cls P.Cpi "gfp-desync" @ cls P.Cpi "gfp-dropmeta"))

let test_record_fields () =
  let module RS = Levee_support.Runstore in
  let r = Faults.to_record ~commit:"t" (Lazy.force report1) in
  Alcotest.(check string) "bumped schema" "levee-faults/3" r.RS.schema;
  List.iter
    (fun f ->
      Alcotest.(check bool) ("record carries " ^ f) true
        (List.mem_assoc f r.RS.metrics))
    [ "hijacked_vanilla"; "hijacked_cfi"; "hijacked_cfi_type";
      "hijacked_cpi"; "hijacked_cpi_crypt" ];
  Alcotest.(check bool) "per-backend counts are ordered" true
    (match
       ( List.assoc "hijacked_vanilla" r.RS.metrics,
         List.assoc "hijacked_cfi" r.RS.metrics,
         List.assoc "hijacked_cfi_type" r.RS.metrics,
         List.assoc "hijacked_cpi" r.RS.metrics,
         List.assoc "hijacked_cpi_crypt" r.RS.metrics )
     with
     | RS.Int v, RS.Int c, RS.Int t, RS.Int p, RS.Int k ->
       v >= c && c > t && t > p && p = 0 && k = 0
     | _ -> false)

let test_random_plan_deterministic () =
  let draw () =
    A.Faultplan.random ~name:"r" ~seed:9001 ~events:5 ~max_step:300
  in
  Alcotest.(check bool) "same seed, same plan" true (draw () = draw ());
  Alcotest.(check bool) "different seed, different plan" true
    (draw () <> A.Faultplan.random ~name:"r" ~seed:9002 ~events:5 ~max_step:300)

let test_resolve_deterministic () =
  let c = Lazy.force smoke in
  let s = List.hd c.Faults.subjects in
  let prog = Levee_minic.Lower.compile ~name:s.Faults.sname s.Faults.source in
  let vb = P.build P.Vanilla prog in
  let reference = M.Loader.load vb.P.prog vb.P.config in
  let cb = P.build P.Cpi prog in
  let deployed = M.Loader.load cb.P.prog cb.P.config in
  List.iter
    (fun plan ->
      let f1 = A.Faultplan.resolve ~reference ~deployed plan in
      let f2 = A.Faultplan.resolve ~reference ~deployed plan in
      Alcotest.(check bool)
        ("resolve deterministic: " ^ plan.A.Faultplan.name)
        true (f1 = f2);
      Alcotest.(check bool)
        ("resolve nonempty: " ^ plan.A.Faultplan.name)
        true (f1 <> []))
    s.Faults.splans

(* ---------- engine quarantine ---------- *)

let broken_workload name : W.Workload.t =
  { W.Workload.name; lang = W.Workload.C;
    description = "deliberately unparsable";
    source = "int main( {"; input = [||]; fuel = 1000 }

let test_engine_quarantine () =
  let e = Engine.create ~quarantine_after:2 ~jobs:1 () in
  Fun.protect
    ~finally:(fun () -> Engine.shutdown e)
    (fun () ->
      let w = broken_workload "quarantine-me" in
      (* Two failing cells in the first batch reach the threshold... *)
      Engine.prefetch e [ Engine.cell w P.Vanilla; Engine.cell w P.Safe_stack ];
      (* ...so a later batch must not execute the workload again. *)
      Engine.prefetch e [ Engine.cell w P.Cpi ];
      match Engine.harness_failures e with
      | [ (c1, r1); (c2, r2); (c3, r3) ] ->
        Alcotest.(check string) "first cell" "quarantine-me/vanilla" c1;
        Alcotest.(check string) "second cell" "quarantine-me/safestack" c2;
        Alcotest.(check string) "third cell" "quarantine-me/cpi" c3;
        let is_exn r =
          String.length r >= 17
          && String.sub r 0 17 = "harness-exception"
        in
        Alcotest.(check bool) "first is an exception" true (is_exn r1);
        Alcotest.(check bool) "second is an exception" true (is_exn r2);
        Alcotest.(check string) "third is quarantined" "quarantined" r3
      | fs ->
        Alcotest.failf "expected 3 harness failures, got %d" (List.length fs))

let test_engine_retry_accounting () =
  (* A failing cell under retries: the harness failure is recorded once,
     with the attempts count visible in the journal entry. *)
  let e = Engine.create ~retries:2 ~jobs:1 () in
  Fun.protect
    ~finally:(fun () -> Engine.shutdown e)
    (fun () ->
      let j = Levee_support.Journal.create ~jobs:1 ~target:"t" () in
      Engine.set_journal e (Some j);
      Engine.prefetch e [ Engine.cell (broken_workload "retry-me") P.Vanilla ];
      match Levee_support.Journal.entries j with
      | [ entry ] ->
        Alcotest.(check int) "three attempts journalled" 3
          entry.Levee_support.Journal.attempts;
        Alcotest.(check int) "status 1" 1 entry.Levee_support.Journal.status
      | es -> Alcotest.failf "expected 1 journal entry, got %d" (List.length es))

let () =
  Alcotest.run "faults"
    [ ( "campaign",
        [ Alcotest.test_case "covers all stores" `Quick test_covers_all_stores;
          Alcotest.test_case "report deterministic" `Slow
            test_report_deterministic;
          Alcotest.test_case "invariants hold" `Slow test_invariants;
          Alcotest.test_case "spectrum ordering" `Slow test_spectrum_ordering;
          Alcotest.test_case "metadata-drop separation" `Slow
            test_metadata_drop_separation;
          Alcotest.test_case "record fields" `Slow test_record_fields ] );
      ( "plans",
        [ Alcotest.test_case "random deterministic" `Quick
            test_random_plan_deterministic;
          Alcotest.test_case "resolve deterministic" `Quick
            test_resolve_deterministic ] );
      ( "engine",
        [ Alcotest.test_case "quarantine trips" `Quick test_engine_quarantine;
          Alcotest.test_case "retry accounting" `Quick
            test_engine_retry_accounting ] ) ]
