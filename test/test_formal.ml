(* Appendix A: executable operational semantics of the CPI enforcement
   mechanism, plus the correctness-sketch invariants as properties.

   The central theorems checked here:
   1. Safety: under CPI semantics, no sensitive dereference ever accesses
      memory outside its based-on object — it aborts instead (the oracle
      counts any access that would slip through; it must stay 0).
   2. All-sensitive degeneration: instantiating the criterion with
      [fun _ -> true] yields full memory safety (SoftBound), and agrees
      with CPI on programs whose pointers are all sensitive.
   3. Regular-region freedom: programs without sensitive types never
      abort (CPI adds no checks to them). *)

module S = Levee_formal.Syntax
module Sem = Levee_formal.Semantics
open S

let t name f = Alcotest.test_case name `Quick f

let outcome_str = function
  | Sem.Done -> "done"
  | Sem.Abort m -> "abort: " ^ m
  | Sem.Out_of_memory -> "oom"

let run ?sensitive p = Sem.run ?sensitive p

let check_done r =
  match r.Sem.outcome with
  | Sem.Done -> ()
  | o -> Alcotest.failf "expected done, got %s" (outcome_str o)

let check_abort r =
  match r.Sem.outcome with
  | Sem.Abort _ -> ()
  | o -> Alcotest.failf "expected abort, got %s" (outcome_str o)

(* fn-ptr variable fp; int variable x; function f sets x via global? The
   command language is tiny, so programs poke variables directly. *)

let test_fig7 () =
  let structs =
    [ ("plain", [ ("a", TInt); ("b", TInt) ]);
      ("vt", [ ("m", TPtr PFn) ]) ]
  in
  Alcotest.(check bool) "int" false (sensitive_aty structs TInt);
  Alcotest.(check bool) "void*" true (sensitive_aty structs (TPtr PVoid));
  Alcotest.(check bool) "fn*" true (sensitive_aty structs (TPtr PFn));
  Alcotest.(check bool) "plain struct ptr" false
    (sensitive_aty structs (TPtr (PS "plain")));
  Alcotest.(check bool) "vtable struct ptr" true
    (sensitive_aty structs (TPtr (PS "vt")));
  Alcotest.(check bool) "int*" false (sensitive_aty structs (TPtr (PA TInt)));
  Alcotest.(check bool) "int**" false
    (sensitive_aty structs (TPtr (PA (TPtr (PA TInt)))))

let test_basic_assign () =
  (* x = 5; y = x + 1 *)
  let p =
    { structs = []; vars = [ ("x", TInt); ("y", TInt) ]; funcs = [];
      body = Seq (Assign (Var "x", Int 5),
                  Assign (Var "y", Add (Lhs (Var "x"), Int 1))) }
  in
  let r = run p in
  check_done r

let test_fn_ptr_call () =
  (* fp = &f; call fp — legitimate indirect call succeeds *)
  let p =
    { structs = []; vars = [ ("fp", TPtr PFn); ("x", TInt) ];
      funcs = [ ("f", Assign (Var "x", Int 1)) ];
      body = Seq (Assign (Var "fp", AddrFn "f"), CallPtr (Var "fp")) }
  in
  check_done (run p)

let test_forged_code_ptr_aborts () =
  (* fp = cast-to-fnptr 12345; call fp -- a forged code pointer must abort *)
  let p =
    { structs = []; vars = [ ("fp", TPtr PFn) ]; funcs = [];
      body = Seq (Assign (Var "fp", Cast (TPtr PFn, Int 12345)),
                  CallPtr (Var "fp")) }
  in
  (* the cast from a regular int yields a regular value; storing it into a
     sensitive location stores "none" in safe memory; the call then aborts *)
  check_abort (run p)

let test_oob_sensitive_deref_aborts () =
  (* p = malloc(2); p = p + 5; *p = 3 — out-of-bounds write through a
     sensitive pointer aborts (spatial safety) *)
  let p =
    { structs = []; vars = [ ("p", TPtr (PA (TPtr PFn))) ]; funcs = [];
      body =
        Seq (Assign (Var "p", Malloc (Int 2)),
             Seq (Assign (Var "p", Add (Lhs (Var "p"), Int 5)),
                  Assign (Deref (Var "p"), AddrFn "nothing"))) }
  in
  let p = { p with funcs = [ ("nothing", Skip) ] } in
  let r = run p in
  check_abort r;
  Alcotest.(check int) "no unsafe access slipped through" 0 r.Sem.oob_slipped

let test_in_bounds_sensitive_deref_ok () =
  let p =
    { structs = []; vars = [ ("p", TPtr (PA (TPtr PFn))) ];
      funcs = [ ("g", Skip) ];
      body =
        Seq (Assign (Var "p", Malloc (Int 2)),
             Seq (Assign (Deref (Var "p"), AddrFn "g"),
                  CallPtr (Deref (Var "p")))) }
  in
  let r = run p in
  check_done r;
  Alcotest.(check bool) "checked derefs happened" true (r.Sem.checked_derefs > 0);
  Alcotest.(check int) "none out of bounds" 0 r.Sem.oob_slipped

let test_regular_oob_not_aborted () =
  (* int pointers are regular under Fig. 7: CPI lets their OOB accesses
     proceed (they cannot touch safe memory) *)
  let p =
    { structs = []; vars = [ ("q", TPtr (PA TInt)) ]; funcs = [];
      body =
        Seq (Assign (Var "q", Malloc (Int 2)),
             Seq (Assign (Var "q", Add (Lhs (Var "q"), Int 9)),
                  Assign (Deref (Var "q"), Int 3))) }
  in
  check_done (run p)

let test_all_sensitive_is_softbound () =
  (* with everything sensitive, the same OOB access IS caught: CPI with an
     all-sensitive classification degenerates to SoftBound *)
  let p =
    { structs = []; vars = [ ("q", TPtr (PA TInt)) ]; funcs = [];
      body =
        Seq (Assign (Var "q", Malloc (Int 2)),
             Seq (Assign (Var "q", Add (Lhs (Var "q"), Int 9)),
                  Assign (Deref (Var "q"), Int 3))) }
  in
  check_abort (run ~sensitive:(fun _ -> true) p)

let test_universal_pointer_fallback () =
  (* a void* holding a regular value falls back to regular memory (the
     "none" marker rules) *)
  let p =
    { structs = []; vars = [ ("v", TPtr PVoid); ("x", TInt) ]; funcs = [];
      body =
        Seq (Assign (Var "v", Cast (TPtr PVoid, Int 42)),
             Assign (Var "x", Lhs (Var "v"))) }
  in
  check_done (run p)

let test_struct_fields () =
  (* struct with an fn-ptr member: the member is safe, the int member is
     regular; both are accessible through a struct pointer *)
  let structs = [ ("obj", [ ("n", TInt); ("cb", TPtr PFn) ]) ] in
  let p =
    { structs;
      vars = [ ("o", TPtr (PS "obj")); ("r", TInt) ];
      funcs = [ ("h", Skip) ];
      body =
        Seq (Assign (Var "o", Malloc (Sizeof (PS "obj"))),
             Seq (Assign (Arrow (Var "o", "n"), Int 5),
                  Seq (Assign (Arrow (Var "o", "cb"), AddrFn "h"),
                       Seq (CallPtr (Arrow (Var "o", "cb")),
                            Assign (Var "r", Lhs (Arrow (Var "o", "n"))))))) }
  in
  check_done (run p)

let test_oom () =
  let p =
    { structs = []; vars = [ ("p", TPtr (PA TInt)) ]; funcs = [];
      body = Assign (Var "p", Malloc (Int 1_000_000)) }
  in
  match (run p).Sem.outcome with
  | Sem.Out_of_memory -> ()
  | o -> Alcotest.failf "expected oom, got %s" (outcome_str o)

(* ---------- QCheck: randomized programs ---------- *)

(* Random straight-line programs over a fixed variable set. Commands are
   built from safe and unsafe ingredients; the safety theorem must hold on
   all of them: under the Fig. 7 criterion, the run either completes or
   aborts, and the oracle never observes an out-of-bounds sensitive access
   slipping through. *)
let gen_cmd : cmd QCheck.Gen.t =
  let open QCheck.Gen in
  let var_int = oneofl [ "x"; "y" ] in
  let var_fp = oneofl [ "fp"; "fq" ] in
  let var_ptr = oneofl [ "p"; "q" ] in
  let rhs_int =
    oneof
      [ map (fun i -> Int i) (int_range (-20) 20);
        map (fun x -> Lhs (Var x)) var_int;
        map2 (fun a b -> Add (Lhs (Var a), Int b)) var_int (int_range 0 9) ]
  in
  let assign_int = map2 (fun x r -> Assign (Var x, r)) var_int rhs_int in
  let assign_fp =
    oneof
      [ map (fun v -> Assign (Var v, AddrFn "f")) var_fp;
        map (fun v -> Assign (Var v, AddrFn "g")) var_fp;
        (* forging attempts *)
        map2 (fun v i -> Assign (Var v, Cast (TPtr PFn, Int i))) var_fp
          (int_range 0 1_000_000) ]
  in
  let alloc = map2 (fun v n -> Assign (Var v, Malloc (Int n))) var_ptr (int_range 1 4) in
  let drift =
    map2 (fun v d -> Assign (Var v, Add (Lhs (Var v), Int d))) var_ptr
      (int_range (-2) 6)
  in
  let write_thru = map (fun v -> Assign (Deref (Var v), Int 7)) var_ptr in
  let call = map (fun v -> CallPtr (Var v)) var_fp in
  let base =
    frequency
      [ (4, assign_int); (3, assign_fp); (3, alloc); (2, drift);
        (2, write_thru); (1, call) ]
  in
  map (fun l -> List.fold_left (fun acc c -> Seq (acc, c)) Skip l)
    (list_size (int_range 1 25) base)

let program_of_cmd body =
  { structs = [];
    vars =
      [ ("x", TInt); ("y", TInt); ("fp", TPtr PFn); ("fq", TPtr PFn);
        ("p", TPtr (PA TInt)); ("q", TPtr (PA TInt)) ];
    funcs = [ ("f", Assign (Var "x", Int 1)); ("g", Assign (Var "y", Int 2)) ];
    body }

let prop_safety =
  QCheck.Test.make ~name:"CPI semantics never lets a sensitive OOB slip"
    ~count:500
    (QCheck.make gen_cmd)
    (fun body ->
      let r = run (program_of_cmd body) in
      r.Sem.oob_slipped = 0)

let prop_all_sensitive_stricter =
  (* if the all-sensitive (SoftBound) run completes, so does the CPI run:
     CPI checks a subset of what full memory safety checks *)
  QCheck.Test.make ~name:"CPI aborts only when full memory safety would"
    ~count:500
    (QCheck.make gen_cmd)
    (fun body ->
      let p = program_of_cmd body in
      let sb = run ~sensitive:(fun _ -> true) p in
      let cpi = run p in
      match sb.Sem.outcome, cpi.Sem.outcome with
      | Sem.Done, Sem.Abort _ -> false   (* CPI stricter than SoftBound: bug *)
      | _, _ -> true)

let prop_int_only_never_aborts =
  (* programs over regular types only never abort under CPI *)
  let gen_int_cmd =
    let open QCheck.Gen in
    let var_int = oneofl [ "x"; "y" ] in
    let assign =
      map2 (fun x i -> Assign (Var x, Int i)) var_int (int_range 0 100)
    in
    let copy = map2 (fun a b -> Assign (Var a, Lhs (Var b))) var_int var_int in
    map (fun l -> List.fold_left (fun acc c -> Seq (acc, c)) Skip l)
      (list_size (int_range 1 30) (oneof [ assign; copy ]))
  in
  QCheck.Test.make ~name:"regular-only programs never abort" ~count:300
    (QCheck.make gen_int_cmd)
    (fun body ->
      match (run (program_of_cmd body)).Sem.outcome with
      | Sem.Done -> true
      | Sem.Abort _ | Sem.Out_of_memory -> false)

let () =
  Alcotest.run "formal"
    [ ("criterion", [ t "Fig. 7 on the subset" test_fig7 ]);
      ("rules",
       [ t "assignment" test_basic_assign;
         t "indirect call" test_fn_ptr_call;
         t "forged code pointer aborts" test_forged_code_ptr_aborts;
         t "OOB sensitive deref aborts" test_oob_sensitive_deref_aborts;
         t "in-bounds sensitive deref ok" test_in_bounds_sensitive_deref_ok;
         t "regular OOB not CPI's business" test_regular_oob_not_aborted;
         t "all-sensitive = full memory safety" test_all_sensitive_is_softbound;
         t "universal pointer fallback" test_universal_pointer_fallback;
         t "struct fields" test_struct_fields;
         t "out of memory" test_oom ]);
      ("properties",
       [ QCheck_alcotest.to_alcotest prop_safety;
         QCheck_alcotest.to_alcotest prop_all_sensitive_stricter;
         QCheck_alcotest.to_alcotest prop_int_only_never_aborts ]) ]
