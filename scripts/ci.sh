#!/bin/sh
# CI entry point: build, full test suite, then the perf-regression gate.
#
# After the tests pass, the script appends fresh run-store records to
# RUNS.jsonl — the serve smoke matrix (one levee-serve/1 record per
# cell, via `levee serve --record`), the fault campaign over the full
# protection spectrum (one levee-faults/3 record carrying the
# per-backend hijack counts, via `levee faults --record`) and the
# simulator wall-clock summary (bench/perf.exe appends its own record)
# — and then runs `levee history --gate` for each appended config
# against the most recent earlier record of the same (schema, config,
# seed). The gate compares field-by-field under the default tolerances
# (simulated cycles and latency percentiles 5%, terminal accounting and
# hijack counts 0%, wall clock 50%); a key with no prior record is
# skipped — the append itself seeds the baseline the next CI run gates
# against, which is also how a deliberate schema bump re-baselines
# without tripping the gate on shape changes.
#
# Usage: scripts/ci.sh [perf-fuel-cap]     (default fuel cap: 20000)

set -eu

cd "$(dirname "$0")/.."
STORE=RUNS.jsonl
FUEL=${1:-20000}

echo "== build =="
dune build

echo "== tests =="
dune runtest

LEVEE="dune exec --no-build bin/levee.exe --"

# How many records the store holds before this run's appends: configs
# appended below gate only against records at an index < BASE.
if [ -f "$STORE" ]; then
  BASE=$(grep -c . "$STORE")
else
  BASE=0
fi

echo "== append: serve smoke matrix =="
$LEVEE serve --requests 12000 --record "$STORE" > /dev/null

echo "== append: fault campaign (protection spectrum) =="
$LEVEE faults --record "$STORE" > /dev/null

echo "== append: perf summary (fuel cap $FUEL) =="
dune exec --no-build bench/perf.exe -- --fuel-cap "$FUEL" > /dev/null

# Gate every appended record against the most recent pre-existing
# record with the same (schema, config, seed) — serve appends one record
# per matrix seed under the same config name, and the schema in the key
# means a bumped record (new fields, new sweep shape) seeds a fresh
# baseline instead of tripping the gate against the old shape. Records
# are one JSON object per line; 0-based line indices are exactly the run
# specs `levee history --gate A B` consumes.
FAIL=0
TOTAL=$(grep -c . "$STORE")
i=$BASE
while [ "$i" -lt "$TOTAL" ]; do
  line=$(sed -n "$((i + 1))p" "$STORE")
  schema=$(printf '%s' "$line" | sed 's/.*"schema":"\([^"]*\)".*/\1/')
  config=$(printf '%s' "$line" | sed 's/.*"config":"\([^"]*\)".*/\1/')
  seed=$(printf '%s' "$line" | sed 's/.*"seed":\([0-9-]*\).*/\1/')
  key="\"schema\":\"$schema\",.*\"config\":\"$config\",\"seed\":$seed,"
  prev=$(head -n "$BASE" "$STORE" | grep -n "$key" \
         | tail -n 1 | cut -d: -f1 || true)
  if [ -n "$prev" ]; then
    echo "== gate: $config seed $seed (run $((prev - 1)) -> $i) =="
    if ! $LEVEE history --file "$STORE" --gate "$((prev - 1))" "$i"; then
      FAIL=1
    fi
  else
    echo "== gate: $schema $config seed $seed — no prior record, baseline seeded =="
  fi
  i=$((i + 1))
done

if [ "$FAIL" -ne 0 ]; then
  echo "ci: FAIL (regression gate)"
  exit 1
fi
echo "ci: OK"
