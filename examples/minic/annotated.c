// Section 4's struct-ucred story: the annotated struct's fields live in
// the safe region (SafeData) even though they are plain ints, and the
// refinement must never demote accesses through annotated paths.
sensitive struct cred { int uid; int jailed; };

struct cred c;

int is_root() {
  return c.uid == 0;
}

int main() {
  c.uid = 0;
  c.jailed = 1;
  print_int(is_root() + c.jailed);
  return 0;
}
