// A linked list whose next pointers travel as void*: type-rule sensitive
// (universal pointers), but the points-to analysis proves they can only
// ever hold list nodes — never a code pointer — so the refinement demotes
// the accesses back to plain loads/stores (dead instrumentation).
struct node { int v; void *next; };

struct node *mk(int v, struct node *next) {
  struct node *n = (struct node *) malloc(sizeof(struct node));
  n->v = v;
  n->next = (void *) next;
  return n;
}

int sum(struct node *head) {
  int acc = 0;
  struct node *p = head;
  while (p != 0) {
    acc = acc + p->v;
    p = (struct node *) p->next;
  }
  return acc;
}

int main() {
  struct node *head = 0;
  int i;
  for (i = 1; i <= 10; i = i + 1) {
    head = mk(i, head);
  }
  print_int(sum(head));
  return 0;
}
