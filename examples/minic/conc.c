// Concurrent handler registry: a spawned worker installs and dispatches
// function pointers in a shared table. The unlocked installs race on the
// safe store under CPI (two threads' sp-stores to the same slot), so
// `levee analyze` must flag them as thread-unsafe-intrinsic; the install
// under the mutex is serialised and stays silent. main is not reachable
// from a spawn target, so its unlocked install is silent too.
int lk;
int inc(int x) { return x + 1; }
int dbl(int x) { return x * 2; }
int (*handlers[4])(int);

int install(int i) {
  handlers[i] = inc;          // flagged: spawn-reachable via worker, no lock
  return i;
}

int worker(int wid) {
  int j;
  handlers[wid] = dbl;        // flagged: no dominating lock
  mutex_lock(&lk);
  handlers[wid + 1] = inc;    // silent: dominated by mutex_lock
  mutex_unlock(&lk);
  j = install(wid);
  return handlers[j](j);      // flagged: unlocked sensitive load
}

int main() {
  int t;
  int r;
  t = thread_spawn(worker, 1);
  r = thread_join(t);
  handlers[0] = inc;          // silent: main is not spawned
  print_int(r);
  return 0;
}
