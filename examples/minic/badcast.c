// An integer smuggled into a function pointer: the cast produces a
// sensitive type, so Castflow forces the load that produced the value
// through the safe store. levee analyze flags both the unsafe cast and
// the forced load.
int inc(int x) { return x + 1; }

int slots[4];

int call_slot(int i) {
  int v;
  int (*f)(int);
  v = slots[i];
  f = (int (*)(int)) v;
  if (v == 0) { return 0; }
  return f(7);
}

int main() {
  slots[0] = 0;
  print_int(call_slot(0));
  return 0;
}
