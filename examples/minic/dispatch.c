// Function-pointer dispatch: the CPI bread-and-butter case. The handler
// pointers are type-rule sensitive and reach code, so the points-to
// refinement must NOT demote them; the repeated e->cb access in fire()
// demonstrates redundant-check elision instead (the second load's check
// is dominated by the first with no intervening clobber).
struct ev { int (*cb)(int); int armed; };

int inc(int x) { return x + 1; }
int dbl(int x) { return x * 2; }

struct ev *events[4];

int fire(struct ev *e, int x) {
  if (e->cb != 0) {
    return e->cb(x);
  }
  return 0;
}

int main() {
  int i;
  int acc = 0;
  for (i = 0; i < 4; i = i + 1) {
    events[i] = (struct ev *) malloc(sizeof(struct ev));
    events[i]->armed = i;
    events[i]->cb = 0;
  }
  events[0]->cb = inc;
  events[1]->cb = dbl;
  events[2]->cb = inc;
  for (i = 0; i < 4; i = i + 1) {
    acc = acc + fire(events[i], i);
  }
  print_int(acc);
  return 0;
}
