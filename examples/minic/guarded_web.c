// A properly guarded web-stack fragment: two workers drain a shared
// request queue and dispatch through a shared routing table, with every
// shared access under one mutex; main fills the queue before spawning
// and reads the stats after joining. Both detectors must stay silent:
// the may-live window keeps main's unlocked setup and teardown out of
// the race set, and the workers' common lock covers the rest.
int queue[16];
int qhead;
int qtail;
int served;
int total;
int lk;
int (*route[2])(int);

int route_a(int x) { return x + 1; }
int route_b(int x) { return x * 2; }

int worker(int wid) {
  int done;
  int req;
  int r;
  done = 0;
  while (done == 0) {
    req = 0 - 1;
    mutex_lock(&lk);
    if (qhead < qtail) {
      req = queue[qhead];
      qhead = qhead + 1;
    }
    mutex_unlock(&lk);
    if (req < 0) {
      done = 1;
    } else {
      mutex_lock(&lk);
      r = route[req % 2](req);
      served = served + 1;
      total = total + r;
      mutex_unlock(&lk);
    }
  }
  return wid;
}

int main() {
  int i;
  int t1;
  int t2;
  route[0] = route_a;
  route[1] = route_b;
  i = 0;
  while (i < 16) {
    queue[i] = i * 3;
    i = i + 1;
  }
  qtail = 16;
  t1 = thread_spawn(worker, 1);
  t2 = thread_spawn(worker, 2);
  i = thread_join(t1) + thread_join(t2);
  print_int(served);
  print_int(total);
  return 0;
}
