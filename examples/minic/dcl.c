// Double-checked locking: the classic broken idiom. The unlocked fast
// path reads `ready` (and then calls through `handler`) with an empty
// lockset while the initialising thread writes both under the mutex, so
// the static analyzer must report both globals -- `handler` as
// safe-region storage, since it is a function pointer and lives in the
// safe region under CPI. On this sequentially-consistent machine the
// idiom still works (every run exits 0), which is exactly why the race
// needs a detector rather than a crash to be seen.
int lk;
int ready;
int (*handler)(int);

int dbl(int x) { return x * 2; }

int user(int wid) {
  if (ready == 0) {
    mutex_lock(&lk);
    if (ready == 0) {
      handler = dbl;
      ready = 1;
    }
    mutex_unlock(&lk);
  }
  return handler(wid);
}

int main() {
  int t1;
  int t2;
  int r;
  t1 = thread_spawn(user, 3);
  t2 = thread_spawn(user, 4);
  r = thread_join(t1) + thread_join(t2);
  print_int(r);
  return 0;
}
