// A zoo of indirect calls separating the graded CFI family: the fp call
// in zoo() has signature int(int,int) whose address-taken class is
// {add, evil} (evil is address-taken only through evil_ref, never called
// benignly), while post has signature int(int) with class {out}. Coarse
// CFI lumps every function entry into one set, so redirecting fp to
// backdoor — a different signature — still passes; cfi-type refuses it
// but must admit a same-signature swap to evil. CPI and cpi-crypt refuse
// both: the pointer itself is protected, not the target set.
int add(int a, int b) { return a + b; }
int sub(int a, int b) { return a - b; }
int evil(int a, int b) { system("pwn"); return a; }
int backdoor() { system("pwn"); return 1; }

int (*evil_ref)(int, int) = evil;

int out(int x) { return x & 65535; }
int (*post)(int) = out;

int zoo(int n) {
  int (*fp)(int, int);
  int acc;
  int i;
  fp = add;
  acc = 0;
  i = 0;
  while (i < n) {
    acc = post(acc + fp(i, 2));
    i = i + 1;
  }
  checksum(acc);
  return acc;
}

int main() {
  zoo(60);
  print_str("done");
  return 0;
}
