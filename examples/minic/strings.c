// char* string handling: the Strheur heuristic recognises these pointers
// as strings and demotes their accesses, keeping MOCPI low without any
// points-to reasoning.
char buf[32];
char msg[16];

int copy_msg() {
  char *s;
  char *d;
  int n;
  s = msg;
  d = buf;
  n = 0;
  while (s[n] != 0) {
    d[n] = s[n];
    n = n + 1;
  }
  return n;
}

int main() {
  msg[0] = 104;
  msg[1] = 105;
  msg[2] = 0;
  print_int(copy_msg());
  print_str(buf);
  return 0;
}
