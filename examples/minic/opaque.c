// An opaque cache of void* handles that are only ever stored, compared
// and freed — never dereferenced, called, or cast back to a typed
// pointer. The type rule makes every cache access sensitive (universal
// pointers), but the points-to refinement proves the handles never hold
// code and every use is metadata-blind, so CPI demotes all of them:
// levee analyze reports the accesses as dead instrumentation.
void *cache[4];

int main() {
  int i;
  int hits;
  hits = 0;
  for (i = 0; i < 4; i = i + 1) {
    cache[i] = malloc(8);
  }
  for (i = 0; i < 4; i = i + 1) {
    if (cache[i] != 0) { hits = hits + 1; }
  }
  for (i = 0; i < 4; i = i + 1) {
    free(cache[i]);
  }
  print_int(hits);
  return 0;
}
