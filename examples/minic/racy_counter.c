// Two spawned workers bump a shared counter with no lock: the canonical
// unguarded data race. Both detectors must flag `counter`; the run still
// exits 0 under every seed (the lost updates only skew the final count,
// not control flow).
int counter;

int worker(int n) {
  int i;
  i = 0;
  while (i < n) {
    counter = counter + 1;
    i = i + 1;
  }
  return n;
}

int main() {
  int t1;
  int t2;
  int r;
  t1 = thread_spawn(worker, 200);
  t2 = thread_spawn(worker, 200);
  r = thread_join(t1) + thread_join(t2);
  print_int(r);
  return 0;
}
