(* Quickstart: compile a MiniC program, protect it with CPI, run it, and
   watch CPI stop an exploit that hijacks the unprotected build.

     dune exec examples/quickstart.exe

   This is the fastest tour of the public API:
     Levee_minic.Lower.compile   : MiniC source -> IR
     Levee_core.Pipeline.build   : IR -> instrumented IR + machine config
     Levee_machine.Interp.run_program : execute and observe the outcome *)

module P = Levee_core.Pipeline
module M = Levee_machine

(* A tiny network service: it reads a request into a stack buffer with
   gets() — the classic bug — and then calls a handler through a function
   pointer. The backdoor function is never called legitimately. *)
let source = {|
int handle_hello(int n) { print_str("hello"); return n; }
int handle_stats(int n) { print_int(n); return n + 1; }

int backdoor() { system("/bin/sh"); return 0; }

int serve() {
  int (*handler)(int);
  char request[8];
  handler = handle_hello;
  gets(request);
  if (request[0] == 's') { handler = handle_stats; }
  return handler(3);
}

int main() {
  serve();
  print_str("bye");
  return 0;
}
|}

let run_with ~name ~input protection prog =
  let built = P.build protection prog in
  let r = M.Interp.run_program ~input built.P.prog built.P.config in
  Printf.printf "  %-10s -> %-40s (cycles: %d)\n" name
    (M.Trap.outcome_to_string r.M.Interp.outcome)
    r.M.Interp.cycles;
  r

let () =
  print_endline "== 1. compile ==";
  let prog = Levee_minic.Lower.compile ~name:"service.c" source in
  Printf.printf "  compiled: %d functions\n"
    (List.length prog.Levee_ir.Prog.func_order);

  print_endline "\n== 2. benign request under every configuration ==";
  let benign = [| Char.code 'h'; Char.code 'i' |] in
  List.iter
    (fun prot ->
      ignore (run_with ~name:(P.protection_name prot) ~input:benign prot prog))
    [ P.Vanilla; P.Safe_stack; P.Cps; P.Cpi ];

  print_endline "\n== 3. the exploit ==";
  print_endline "  (overflows 'request' to redirect 'handler' at backdoor)";
  (* The attacker studies the unprotected binary's frame layout. *)
  let vanilla = P.build P.Vanilla prog in
  let image = M.Loader.load vanilla.P.prog vanilla.P.config in
  let target = M.Loader.entry_addr image "backdoor" in
  let fn = Levee_ir.Prog.find_func vanilla.P.prog "serve" in
  let handler_reg, buf_reg =
    match Levee_attacks.Attack.allocas_of fn with
    | (h, _) :: (b, _) :: _ -> (h, b)
    | _ -> failwith "unexpected frame"
  in
  let layout = Hashtbl.find image.M.Loader.layouts "serve" in
  let off r = (Hashtbl.find layout.M.Loader.fl_slots r).M.Loader.sl_offset in
  let dist = off buf_reg - off handler_reg in
  let payload = Array.make (dist + 1) (Char.code 'A') in
  payload.(dist) <- target;
  Printf.printf "  payload: %d filler words, then the backdoor address %#x\n\n"
    dist target;
  List.iter
    (fun prot -> ignore (run_with ~name:(P.protection_name prot) ~input:payload prot prog))
    [ P.Vanilla; P.Safe_stack; P.Cps; P.Cpi ];

  print_endline "\n== what happened ==";
  print_endline
    "  vanilla:   the overflow rewrote the function pointer; control reached";
  print_endline "             system() — a successful control-flow hijack.";
  print_endline
    "  safestack: the scalar function pointer lives on the safe stack, out of";
  print_endline "             the overflow's reach: the request is served normally.";
  print_endline
    "  cps/cpi:   code pointers live in the safe region; the corrupted regular";
  print_endline "             copy is never used. The hijack is silently prevented."
