(* Example: the Perl-interpreter scenario from Section 3.3.

   The paper uses Perl's opcode dispatch to explain the difference between
   CFI, CPS and CPI: the interpreter represents a program as a sequence of
   function pointers to opcode handlers. Under coarse CFI, a memory bug
   lets an attacker execute ANY opcode handler (or any function); under
   CPS, only code pointers the program actually stored can be called —
   but a corrupted index can still pick the WRONG stored pointer; under
   CPI, the dispatch table pointer itself is protected.

     dune exec examples/protect_interpreter.exe *)

module P = Levee_core.Pipeline
module M = Levee_machine

(* The interpreter has a benign opcode table plus one privileged handler
   (op_admin, think "eval") whose address is stored in a separate table
   that the sandboxed script must never reach. The vulnerability lets the
   attacker corrupt the table POINTER. *)
let source = {|
int vm_acc;

int op_add(int a) { vm_acc = vm_acc + a; return 0; }
int op_mul(int a) { vm_acc = vm_acc * a; return 0; }
int op_out(int a) { print_int(vm_acc + a); return 0; }

int op_admin(int a) { system("admin-eval"); return a; }

int (*user_ops[3])(int) = { op_add, op_mul, op_out };
int (*admin_ops[1])(int) = { op_admin };

struct vm { char name[8]; int (**ops)(int); };

int script_op[6] = {0, 1, 0, 2, 0, 2};
int script_arg[6] = {3, 4, 5, 0, 2, 1};

int run_script(struct vm *m) {
  int pc;
  for (pc = 0; pc < 6; pc = pc + 1) {
    m->ops[script_op[pc]](script_arg[pc]);
  }
  return vm_acc;
}

int main() {
  struct vm *m;
  m = (struct vm *) malloc(sizeof(struct vm));
  m->ops = user_ops;
  gets(m->name);            // attacker-controlled "vm name"
  run_script(m);
  return 0;
}
|}

let () =
  let prog = Levee_minic.Lower.compile ~name:"mini-perl.c" source in
  (* The attack: overflow m->name so m->ops points at admin_ops; the
     script's opcode 0 then dispatches op_admin. This is exactly the
     "interchange valid code pointers" attack class. *)
  let vanilla = P.build P.Vanilla prog in
  let image = M.Loader.load vanilla.P.prog vanilla.P.config in
  let admin_ops = Hashtbl.find image.M.Loader.global_addr "admin_ops" in
  let payload = Array.make 9 0x41 in
  payload.(8) <- admin_ops;   (* name[8] is followed by the ops pointer *)

  print_endline "Mini-Perl opcode interpreter: corrupting the dispatch-table pointer";
  Printf.printf "payload redirects m->ops at admin_ops (%#x)\n\n" admin_ops;
  Printf.printf "%-12s %-14s %s\n" "config" "benign run" "under attack";
  List.iter
    (fun prot ->
      let built = P.build prot prog in
      let benign =
        M.Interp.run_program ~input:[||] built.P.prog built.P.config
      in
      let attacked =
        M.Interp.run_program ~input:payload built.P.prog built.P.config
      in
      Printf.printf "%-12s %-14s %s\n" (P.protection_name prot)
        (M.Trap.outcome_to_string benign.M.Interp.outcome)
        (M.Trap.outcome_to_string attacked.M.Interp.outcome))
    [ P.Vanilla; P.Cfi; P.Cps; P.Cpi ];

  print_endline "";
  print_endline "Reading the table (matches Section 3.3's Perl discussion):";
  print_endline
    " - CFI permits the hijack: op_admin is a valid function, and coarse CFI";
  print_endline "   only checks that indirect calls target some function entry.";
  print_endline
    " - CPS also permits it: admin_ops holds genuinely-stored code pointers,";
  print_endline
    "   and the table POINTER m->ops is not itself a code pointer, so CPS";
  print_endline
    "   does not protect it. The attacker can only reach stored opcodes,";
  print_endline "   though — never injected or forged ones.";
  print_endline
    " - CPI protects m->ops itself (a pointer used to access code pointers";
  print_endline
    "   indirectly): the corrupted regular copy is ignored and the sandboxed";
  print_endline "   script runs normally."
