(* Example: protecting sensitive non-control data (Section 4, "sensitive
   data protection") — the paper's struct-ucred use case.

   CPI's machinery is not limited to code pointers: a programmer can
   annotate a type as sensitive and CPI will keep its values in the safe
   region, immune to memory corruption in the regular region.

     dune exec examples/sensitive_data.exe *)

module P = Levee_core.Pipeline
module M = Levee_machine

(* A login service keeps per-session credentials next to a parsing buffer.
   The classic heap/global overflow rewrites uid to 0 — unless the ucred
   type is annotated sensitive. *)
let source = {|
sensitive struct ucred { int uid; int gid; int jailed; };

char parsebuf[12];
struct ucred session;

int is_root() { return session.uid == 0; }

int main() {
  session.uid = 1000;
  session.gid = 100;
  session.jailed = 1;
  gets(parsebuf);                  // the memory-corruption bug
  if (is_root() && session.jailed == 0) {
    system("drop-to-root-shell");
  }
  print_int(session.uid);
  print_int(session.jailed);
  return session.uid == 1000 && session.jailed == 1 ? 0 : 1;
}
|}

let () =
  let checked, prog = Levee_minic.Lower.compile_checked source in
  let annotated = checked.Levee_minic.Typecheck.sensitive_structs in
  Printf.printf "programmer-annotated sensitive structs: %s\n\n"
    (String.concat ", " annotated);

  (* The exploit: overflow parsebuf to zero uid and jailed. *)
  let vanilla = P.build P.Vanilla prog in
  let image = M.Loader.load vanilla.P.prog vanilla.P.config in
  let buf = Hashtbl.find image.M.Loader.global_addr "parsebuf" in
  let cred = Hashtbl.find image.M.Loader.global_addr "session" in
  let payload = Array.make (cred - buf + 3) 0 in

  Printf.printf "%-22s %-30s %s\n" "config" "outcome" "printed uid/jailed";
  List.iter
    (fun (name, prot, ann) ->
      let built = P.build ~annotated:ann prot prog in
      let r = M.Interp.run_program ~input:payload built.P.prog built.P.config in
      Printf.printf "%-22s %-30s %s\n" name
        (M.Trap.outcome_to_string r.M.Interp.outcome)
        (String.concat "/" (String.split_on_char '\n' (String.trim r.M.Interp.output))))
    [ ("vanilla", P.Vanilla, []);
      ("cpi (no annotation)", P.Cpi, []);
      ("cpi + sensitive ucred", P.Cpi, annotated) ];

  print_endline "";
  print_endline "Without the annotation, even CPI lets the overflow rewrite uid —";
  print_endline "it is plain data, not a code pointer (data-only attacks are out of";
  print_endline "CPI's default scope). With 'sensitive struct ucred', every access";
  print_endline "to the credentials goes through the safe region: the overflow hits";
  print_endline "only the unused regular copy and the privilege escalation fails."
